"""FileStream BLOB storage.

SQL Server 2008's FILESTREAM stores ``VARBINARY(MAX)`` column values as
files in an NTFS directory that the database owns: the relational row
holds a GUID, the payload lives in the file system, clients may stream it
through Win32 APIs, and the DBMS keeps transactional and administrative
control (backup, consistency checks). This module reproduces that design:

- each FileStream *filegroup* is a directory owned by the database;
- a stored BLOB is a GUID-named file inside it;
- :meth:`FileStreamStore.get_bytes` is the streaming read API the paper's
  TVF wrapper uses — an offset/length read with an optional
  *SequentialAccess* read-ahead window (mirroring
  ``SqlBytes.Read``/``CommandBehavior.SequentialAccess``);
- creation/deletion are two-phase so the transaction manager can roll
  them back;
- external tools can be handed the real path (``PathName()``) and write
  through ordinary file APIs — the hybrid design's key property.
"""

from __future__ import annotations

import os
import shutil
import uuid
from dataclasses import dataclass
from pathlib import Path
from typing import BinaryIO, Dict, Iterator, Optional

from .errors import FileStreamError
from .metrics import Counters

#: default read-ahead window for SequentialAccess streaming (bytes)
DEFAULT_PREFETCH = 1 << 20


@dataclass
class BlobInfo:
    guid: uuid.UUID
    path: Path
    length: int


class FileStreamStore:
    """One FILESTREAM filegroup: a directory of GUID-named BLOB files."""

    def __init__(self, directory: os.PathLike | str, name: str = "FILESTREAMGROUP"):
        self.name = name
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self._blobs: Dict[uuid.UUID, BlobInfo] = {}
        self._prefetch_cache: Dict[uuid.UUID, tuple] = {}
        #: always-on IO counters: chunk reads, prefetch hits, bytes moved
        self.io = Counters()
        self._recover_existing()

    def _recover_existing(self) -> None:
        """Re-attach BLOB files already present in the directory."""
        for entry in self.directory.iterdir():
            if not entry.is_file():
                continue
            try:
                guid = uuid.UUID(entry.stem)
            except ValueError:
                continue
            self._blobs[guid] = BlobInfo(guid, entry, entry.stat().st_size)

    # -- write path -----------------------------------------------------------------

    def _path_for(self, guid: uuid.UUID) -> Path:
        return self.directory / f"{guid}.blob"

    def create(self, data: bytes, guid: Optional[uuid.UUID] = None) -> uuid.UUID:
        """Store a new BLOB; returns its GUID."""
        guid = guid or uuid.uuid4()
        if guid in self._blobs:
            raise FileStreamError(f"BLOB {guid} already exists")
        path = self._path_for(guid)
        with open(path, "wb") as handle:
            handle.write(data)
        self._blobs[guid] = BlobInfo(guid, path, len(data))
        self.io.incr("blobs_created")
        self.io.incr("bytes_written", len(data))
        return guid

    def create_from_file(
        self, source: os.PathLike | str, guid: Optional[uuid.UUID] = None
    ) -> uuid.UUID:
        """Bulk-import an existing file (the paper's ``OPENROWSET BULK ...
        SINGLE_BLOB`` path) without loading it into memory."""
        guid = guid or uuid.uuid4()
        if guid in self._blobs:
            raise FileStreamError(f"BLOB {guid} already exists")
        path = self._path_for(guid)
        shutil.copyfile(source, path)
        self._blobs[guid] = BlobInfo(guid, path, path.stat().st_size)
        self.io.incr("blobs_created")
        self.io.incr("bytes_written", self._blobs[guid].length)
        return guid

    def open_for_write(self, guid: Optional[uuid.UUID] = None) -> tuple[uuid.UUID, BinaryIO]:
        """Hand out a writable handle, as an external tool using
        ``WriteFile()`` against the managed path would. The caller must
        close the handle; :meth:`refresh_length` then updates accounting."""
        guid = guid or uuid.uuid4()
        if guid in self._blobs:
            raise FileStreamError(f"BLOB {guid} already exists")
        path = self._path_for(guid)
        handle = open(path, "wb")
        self._blobs[guid] = BlobInfo(guid, path, 0)
        return guid, handle

    def refresh_length(self, guid: uuid.UUID) -> int:
        info = self._require(guid)
        info.length = info.path.stat().st_size
        return info.length

    def delete(self, guid: uuid.UUID) -> None:
        info = self._require(guid)
        info.path.unlink(missing_ok=True)
        del self._blobs[guid]
        self._prefetch_cache.pop(guid, None)

    # -- read path ------------------------------------------------------------------

    def _require(self, guid: uuid.UUID) -> BlobInfo:
        try:
            return self._blobs[guid]
        except KeyError:
            raise FileStreamError(f"unknown BLOB {guid}") from None

    def path_name(self, guid: uuid.UUID) -> str:
        """The ``reads.PathName()`` of the paper: the managed file path."""
        return str(self._require(guid).path)

    def data_length(self, guid: uuid.UUID) -> int:
        """``DATALENGTH(reads)``."""
        return self._require(guid).length

    def exists(self, guid: uuid.UUID) -> bool:
        return guid in self._blobs

    def read_all(self, guid: uuid.UUID) -> bytes:
        info = self._require(guid)
        return info.path.read_bytes()

    def get_bytes(
        self,
        guid: uuid.UUID,
        offset: int,
        buffer: bytearray,
        buffer_offset: int,
        length: int,
        sequential: bool = True,
        prefetch: int = DEFAULT_PREFETCH,
    ) -> int:
        """Read up to ``length`` bytes at ``offset`` into ``buffer``.

        This is the ``GetBytes`` call of the paper's wrapper pseudo-code.
        With ``sequential=True`` a read-ahead window of ``prefetch`` bytes
        is maintained so consecutive chunked reads hit memory, which is
        what makes the chunked TVF competitive with raw file scans.
        Returns the number of bytes actually read (0 at end-of-blob).
        """
        info = self._require(guid)
        if offset < 0 or length < 0:
            raise FileStreamError("negative offset/length")
        if offset >= info.length:
            return 0
        self.io.incr("chunk_reads")
        if sequential:
            data = self._sequential_read(info, offset, length, prefetch)
        else:
            with open(info.path, "rb") as handle:
                handle.seek(offset)
                data = handle.read(length)
            self.io.incr("file_reads")
        self.io.incr("bytes_read", len(data))
        buffer[buffer_offset : buffer_offset + len(data)] = data
        return len(data)

    def _sequential_read(
        self, info: BlobInfo, offset: int, length: int, prefetch: int
    ) -> bytes:
        window = self._prefetch_cache.get(info.guid)
        if window is not None:
            win_start, win_data = window
            if win_start <= offset and offset + length <= win_start + len(win_data):
                rel = offset - win_start
                self.io.incr("prefetch_hits")
                return win_data[rel : rel + length]
        self.io.incr("prefetch_misses")
        self.io.incr("file_reads")
        read_len = max(length, prefetch)
        with open(info.path, "rb") as handle:
            handle.seek(offset)
            data = handle.read(read_len)
        self._prefetch_cache[info.guid] = (offset, data)
        return data[:length]

    def open_stream(self, guid: uuid.UUID) -> BinaryIO:
        """A plain read handle, for tools that keep their own file logic."""
        return open(self._require(guid).path, "rb")

    # -- administration ---------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._blobs)

    def total_bytes(self) -> int:
        return sum(info.length for info in self._blobs.values())

    def guids(self) -> Iterator[uuid.UUID]:
        return iter(self._blobs)

    def consistency_check(self) -> list[str]:
        """DBCC-style check: every catalogued BLOB must exist on disk with
        the recorded length; every file must be catalogued."""
        problems = []
        for guid, info in self._blobs.items():
            if not info.path.exists():
                problems.append(f"missing file for BLOB {guid}")
            elif info.path.stat().st_size != info.length:
                problems.append(
                    f"length mismatch for BLOB {guid}: "
                    f"catalog {info.length}, disk {info.path.stat().st_size}"
                )
        catalogued = {info.path for info in self._blobs.values()}
        for entry in self.directory.iterdir():
            if entry.is_file() and entry.suffix == ".blob" and entry not in catalogued:
                problems.append(f"orphan file {entry.name}")
        return problems
