"""SQL type system.

The engine supports a pragmatic subset of the SQL Server 2008 scalar types
the paper relies on, plus a hook for user-defined types (UDTs):

- exact numerics: ``INT``, ``BIGINT``, ``SMALLINT``, ``TINYINT``, ``BIT``
- approximate numerics: ``FLOAT``
- strings: ``CHAR(n)``, ``VARCHAR(n)``, ``VARCHAR(MAX)``
- binary: ``BINARY(n)``, ``VARBINARY(n)``, ``VARBINARY(MAX)``
- ``UNIQUEIDENTIFIER`` (GUID)
- ``DATETIME`` (stored as POSIX float for simplicity)
- UDTs registered through :class:`repro.engine.udf.UdtRegistry`

A column of type ``VARBINARY(MAX)`` may additionally carry the
``FILESTREAM`` storage attribute (see :mod:`repro.engine.filestream`), in
which case the stored value is a GUID pointer into the FileStream store.

SQL ``NULL`` is represented by Python ``None`` everywhere.
"""

from __future__ import annotations

import struct
import uuid
from dataclasses import dataclass, field
from typing import Any, Callable, Optional

from .errors import TypeMismatchError

#: sentinel length for VARCHAR(MAX) / VARBINARY(MAX)
MAX = -1

# ---------------------------------------------------------------------------
# type kinds
# ---------------------------------------------------------------------------

INT = "INT"
BIGINT = "BIGINT"
SMALLINT = "SMALLINT"
TINYINT = "TINYINT"
BIT = "BIT"
FLOAT = "FLOAT"
CHAR = "CHAR"
VARCHAR = "VARCHAR"
BINARY = "BINARY"
VARBINARY = "VARBINARY"
UNIQUEIDENTIFIER = "UNIQUEIDENTIFIER"
DATETIME = "DATETIME"
UDT = "UDT"

_INTEGER_KINDS = {INT, BIGINT, SMALLINT, TINYINT, BIT}

_INT_RANGES = {
    TINYINT: (0, 255),
    SMALLINT: (-(2**15), 2**15 - 1),
    INT: (-(2**31), 2**31 - 1),
    BIGINT: (-(2**63), 2**63 - 1),
    BIT: (0, 1),
}

_FIXED_WIDTHS = {
    TINYINT: 1,
    SMALLINT: 2,
    INT: 4,
    BIGINT: 8,
    BIT: 1,
    FLOAT: 8,
    UNIQUEIDENTIFIER: 16,
    DATETIME: 8,
}


@dataclass(frozen=True)
class SqlType:
    """A resolved SQL type: a kind plus an optional length / UDT name.

    ``length`` is the declared maximum for CHAR/VARCHAR/BINARY/VARBINARY
    (``MAX`` meaning unbounded) and is ignored for other kinds.
    """

    kind: str
    length: int = 0
    udt_name: Optional[str] = None
    #: set on VARBINARY(MAX) columns declared with the FILESTREAM attribute
    filestream: bool = False

    # -- classification ----------------------------------------------------

    @property
    def is_integer(self) -> bool:
        return self.kind in _INTEGER_KINDS

    @property
    def is_numeric(self) -> bool:
        return self.is_integer or self.kind == FLOAT

    @property
    def is_string(self) -> bool:
        return self.kind in (CHAR, VARCHAR)

    @property
    def is_binary(self) -> bool:
        return self.kind in (BINARY, VARBINARY)

    @property
    def is_variable_length(self) -> bool:
        """True when the on-page representation has a length prefix."""
        return self.kind in (VARCHAR, VARBINARY, UDT) or (
            self.kind == CHAR and False
        )

    @property
    def fixed_width(self) -> Optional[int]:
        """Byte width of the uncompressed fixed-size representation,
        or ``None`` for variable-length kinds."""
        if self.kind in _FIXED_WIDTHS:
            return _FIXED_WIDTHS[self.kind]
        if self.kind in (CHAR, BINARY) and self.length != MAX:
            return self.length
        return None

    # -- validation / coercion ---------------------------------------------

    def validate(self, value: Any) -> Any:
        """Validate (and lightly coerce) a Python value against this type.

        Returns the canonical Python representation or raises
        :class:`TypeMismatchError`. ``None`` always passes (NULL).
        """
        if value is None:
            return None
        if self.is_integer:
            if isinstance(value, bool):
                value = int(value)
            if not isinstance(value, int):
                if isinstance(value, float) and value.is_integer():
                    value = int(value)
                else:
                    raise TypeMismatchError(
                        f"expected {self.kind}, got {type(value).__name__}"
                    )
            lo, hi = _INT_RANGES[self.kind]
            if not lo <= value <= hi:
                raise TypeMismatchError(
                    f"value {value} out of range for {self.kind}"
                )
            return value
        if self.kind == FLOAT:
            if isinstance(value, bool) or not isinstance(value, (int, float)):
                raise TypeMismatchError(
                    f"expected FLOAT, got {type(value).__name__}"
                )
            return float(value)
        if self.kind == DATETIME:
            if not isinstance(value, (int, float)):
                raise TypeMismatchError(
                    f"expected DATETIME (posix seconds), got {type(value).__name__}"
                )
            return float(value)
        if self.is_string:
            if not isinstance(value, str):
                raise TypeMismatchError(
                    f"expected {self}, got {type(value).__name__}"
                )
            if self.length not in (0, MAX) and len(value) > self.length:
                raise TypeMismatchError(
                    f"string of length {len(value)} exceeds {self}"
                )
            if self.kind == CHAR and self.length not in (0, MAX):
                value = value.ljust(self.length)
            return value
        if self.is_binary:
            if isinstance(value, (bytearray, memoryview)):
                value = bytes(value)
            if not isinstance(value, bytes):
                raise TypeMismatchError(
                    f"expected {self}, got {type(value).__name__}"
                )
            if self.length not in (0, MAX) and len(value) > self.length:
                raise TypeMismatchError(
                    f"binary of length {len(value)} exceeds {self}"
                )
            return value
        if self.kind == UNIQUEIDENTIFIER:
            if isinstance(value, uuid.UUID):
                return value
            if isinstance(value, str):
                try:
                    return uuid.UUID(value)
                except ValueError as exc:
                    raise TypeMismatchError(
                        f"bad UNIQUEIDENTIFIER string {value!r}"
                    ) from exc
            if isinstance(value, bytes) and len(value) == 16:
                return uuid.UUID(bytes=value)
            raise TypeMismatchError(
                f"expected UNIQUEIDENTIFIER, got {type(value).__name__}"
            )
        if self.kind == UDT:
            # UDT payloads travel as the UDT's python object or raw bytes;
            # serialisation is delegated to the UDT contract at storage time.
            return value
        raise TypeMismatchError(f"unknown type kind {self.kind!r}")

    # -- binary encoding of single values (used by the row serialiser) ------

    def encode(self, value: Any, udt_codec: Optional["UdtCodec"] = None) -> bytes:
        """Encode a non-NULL value into its uncompressed storage bytes."""
        if self.is_integer:
            width = _FIXED_WIDTHS[self.kind]
            return int(value).to_bytes(width, "little", signed=self.kind != TINYINT and self.kind != BIT)
        if self.kind in (FLOAT, DATETIME):
            return struct.pack("<d", float(value))
        if self.kind == UNIQUEIDENTIFIER:
            return value.bytes
        if self.is_string:
            return value.encode("utf-8")
        if self.is_binary:
            return bytes(value)
        if self.kind == UDT:
            if udt_codec is None:
                raise TypeMismatchError(f"no codec for UDT {self.udt_name!r}")
            return udt_codec.serialize(value)
        raise TypeMismatchError(f"cannot encode kind {self.kind!r}")

    def decode(self, raw: bytes, udt_codec: Optional["UdtCodec"] = None) -> Any:
        """Inverse of :meth:`encode`."""
        if self.is_integer:
            return int.from_bytes(raw, "little", signed=self.kind != TINYINT and self.kind != BIT)
        if self.kind in (FLOAT, DATETIME):
            return struct.unpack("<d", raw)[0]
        if self.kind == UNIQUEIDENTIFIER:
            return uuid.UUID(bytes=raw)
        if self.is_string:
            return raw.decode("utf-8")
        if self.is_binary:
            return bytes(raw)
        if self.kind == UDT:
            if udt_codec is None:
                raise TypeMismatchError(f"no codec for UDT {self.udt_name!r}")
            return udt_codec.deserialize(raw)
        raise TypeMismatchError(f"cannot decode kind {self.kind!r}")

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        if self.kind == UDT:
            return self.udt_name or "UDT"
        if self.kind in (CHAR, VARCHAR, BINARY, VARBINARY) and self.length:
            n = "MAX" if self.length == MAX else str(self.length)
            suffix = " FILESTREAM" if self.filestream else ""
            return f"{self.kind}({n}){suffix}"
        return self.kind


@dataclass(frozen=True)
class UdtCodec:
    """Serialisation contract for a user-defined type.

    Mirrors the SQL Server CLR UDT contract: a named type with binary
    (de)serialisation and an optional textual form. ``max_bytes`` mirrors
    the 2 GB CLR UDT state limit (unenforced here beyond documentation).
    """

    name: str
    serialize: Callable[[Any], bytes]
    deserialize: Callable[[bytes], Any]
    to_string: Callable[[Any], str] = field(default=str)
    #: representative value the verifier round-trips at registration
    #: time (serialize → deserialize → serialize must be byte-stable);
    #: None registers the codec with an "unverified" warning.
    probe: Any = None


# -- convenient constructors -------------------------------------------------


def int_type() -> SqlType:
    return SqlType(INT)


def bigint_type() -> SqlType:
    return SqlType(BIGINT)


def smallint_type() -> SqlType:
    return SqlType(SMALLINT)


def tinyint_type() -> SqlType:
    return SqlType(TINYINT)


def bit_type() -> SqlType:
    return SqlType(BIT)


def float_type() -> SqlType:
    return SqlType(FLOAT)


def char_type(n: int) -> SqlType:
    return SqlType(CHAR, length=n)


def varchar_type(n: int = MAX) -> SqlType:
    return SqlType(VARCHAR, length=n)


def binary_type(n: int) -> SqlType:
    return SqlType(BINARY, length=n)


def varbinary_type(n: int = MAX, filestream: bool = False) -> SqlType:
    return SqlType(VARBINARY, length=n, filestream=filestream)


def guid_type() -> SqlType:
    return SqlType(UNIQUEIDENTIFIER)


def datetime_type() -> SqlType:
    return SqlType(DATETIME)


def udt_type(name: str) -> SqlType:
    return SqlType(UDT, udt_name=name)
