"""Scalar expression AST and evaluation.

Expressions are parsed by the SQL front end into the dataclasses below,
then *compiled* into Python closures ``row -> value`` against a binder
that resolves column references to row positions. Compilation (rather
than tree-walking per row) keeps scans of hundreds of thousands of rows
tolerable in pure Python.

NULL follows SQL three-valued logic: comparisons and arithmetic on NULL
yield NULL; ``AND``/``OR`` use Kleene logic; ``WHERE`` keeps a row only
when the predicate is exactly true.
"""

from __future__ import annotations

import operator
import uuid
from dataclasses import dataclass, field
from typing import Any, Callable, List, Optional, Sequence, Tuple

from .errors import BindError, ExecutionError
from .udf import FunctionLibrary

# ---------------------------------------------------------------------------
# AST
# ---------------------------------------------------------------------------


class Expr:
    """Base class for expression nodes."""

    def children(self) -> Sequence["Expr"]:
        return ()


@dataclass(frozen=True)
class Literal(Expr):
    value: Any


class Parameter(Literal):
    """A literal lifted into a plan-cache parameter slot.

    ``value`` reads the current slot of the owning cache entry's shared
    parameter store, so a compiled plan template picks up fresh values on
    every execution without recompiling.  Everywhere an expression is
    *evaluated* a Parameter behaves exactly like the literal it replaced;
    code that would *bake* the value at plan time must either accept the
    sniffed value (cost estimates deliberately use the first-seen
    parameters) or keep the node and resolve at execute time (seek
    bounds, pushed column-store predicates, batch-compiled constants).

    ``is_parameter`` exists so storage-layer code can detect slots by
    duck typing without importing this module.
    """

    is_parameter = True

    def __init__(self, index: int, store: List[Any]):
        object.__setattr__(self, "index", index)
        object.__setattr__(self, "store", store)

    @property
    def value(self) -> Any:  # type: ignore[override]
        return self.store[self.index]

    def __repr__(self) -> str:
        # render as the current value so seek bounds and plan labels look
        # exactly like the equivalent inline-literal plan
        return repr(self.store[self.index])


def contains_parameter(expr: Optional[Expr]) -> bool:
    """Does any node of ``expr`` read a plan-cache parameter slot?"""
    if expr is None:
        return False
    if isinstance(expr, Parameter):
        return True
    return any(contains_parameter(child) for child in expr.children())


@dataclass(frozen=True)
class ColumnRef(Expr):
    name: str
    qualifier: Optional[str] = None

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.qualifier}.{self.name}" if self.qualifier else self.name


@dataclass(frozen=True)
class BoundRef(Expr):
    """A reference to a position in the current operator's output row.

    Produced by the planner when it substitutes already-computed values
    (aggregate results, window outputs, subquery columns) into an
    expression tree before compiling it.
    """

    index: int
    label: str = ""


@dataclass(frozen=True)
class BinaryOp(Expr):
    op: str  # '+', '-', '*', '/', '%', '=', '<>', '<', '<=', '>', '>=', 'AND', 'OR'
    left: Expr
    right: Expr

    def children(self) -> Sequence[Expr]:
        return (self.left, self.right)


@dataclass(frozen=True)
class UnaryOp(Expr):
    op: str  # 'NOT', '-'
    operand: Expr

    def children(self) -> Sequence[Expr]:
        return (self.operand,)


@dataclass(frozen=True)
class FuncCall(Expr):
    """A scalar function call — built-in or registered UDF."""

    name: str
    args: Tuple[Expr, ...] = ()

    def children(self) -> Sequence[Expr]:
        return self.args


@dataclass(frozen=True)
class AggregateCall(Expr):
    """An aggregate in a SELECT/HAVING list: COUNT/SUM/... or a UDA.

    ``star`` marks ``COUNT(*)``. ``distinct`` marks ``COUNT(DISTINCT x)``.
    The planner replaces these with references into aggregate output.
    """

    name: str
    args: Tuple[Expr, ...] = ()
    star: bool = False
    distinct: bool = False

    def children(self) -> Sequence[Expr]:
        return self.args


@dataclass(frozen=True)
class WindowCall(Expr):
    """``ROW_NUMBER() OVER (ORDER BY ...)`` — the one window function the
    paper's Query 1 needs."""

    name: str
    order_by: Tuple[Tuple[Expr, bool], ...] = ()  # (expr, descending)

    def children(self) -> Sequence[Expr]:
        return tuple(e for e, _ in self.order_by)


@dataclass(frozen=True)
class IsNull(Expr):
    operand: Expr
    negated: bool = False

    def children(self) -> Sequence[Expr]:
        return (self.operand,)


@dataclass(frozen=True)
class Between(Expr):
    operand: Expr
    low: Expr
    high: Expr

    def children(self) -> Sequence[Expr]:
        return (self.operand, self.low, self.high)


@dataclass(frozen=True)
class InList(Expr):
    operand: Expr
    items: Tuple[Expr, ...]

    def children(self) -> Sequence[Expr]:
        return (self.operand, *self.items)


@dataclass(frozen=True)
class Like(Expr):
    operand: Expr
    pattern: Expr
    negated: bool = False

    def children(self) -> Sequence[Expr]:
        return (self.operand, self.pattern)


@dataclass(frozen=True)
class Case(Expr):
    """Searched CASE: WHEN cond THEN value ... ELSE default END."""

    whens: Tuple[Tuple[Expr, Expr], ...]
    default: Optional[Expr] = None

    def children(self) -> Sequence[Expr]:
        out: List[Expr] = []
        for cond, value in self.whens:
            out.extend((cond, value))
        if self.default is not None:
            out.append(self.default)
        return tuple(out)


# ---------------------------------------------------------------------------
# helpers for tree inspection
# ---------------------------------------------------------------------------


def walk(expr: Expr):
    """Yield every node of the expression tree (pre-order)."""
    yield expr
    for child in expr.children():
        yield from walk(child)


def rewrite(expr: Expr, transform: Callable[["Expr"], Optional["Expr"]]) -> Expr:
    """Rebuild an expression tree, replacing nodes bottom-up.

    ``transform`` is called on every (already child-rewritten) node; it
    returns a replacement node or ``None`` to keep the node as-is.
    """
    if isinstance(expr, BinaryOp):
        expr = BinaryOp(expr.op, rewrite(expr.left, transform), rewrite(expr.right, transform))
    elif isinstance(expr, UnaryOp):
        expr = UnaryOp(expr.op, rewrite(expr.operand, transform))
    elif isinstance(expr, FuncCall):
        expr = FuncCall(expr.name, tuple(rewrite(a, transform) for a in expr.args))
    elif isinstance(expr, AggregateCall):
        expr = AggregateCall(
            expr.name,
            tuple(rewrite(a, transform) for a in expr.args),
            star=expr.star,
            distinct=expr.distinct,
        )
    elif isinstance(expr, WindowCall):
        expr = WindowCall(
            expr.name,
            tuple((rewrite(e, transform), d) for e, d in expr.order_by),
        )
    elif isinstance(expr, IsNull):
        expr = IsNull(rewrite(expr.operand, transform), negated=expr.negated)
    elif isinstance(expr, Between):
        expr = Between(
            rewrite(expr.operand, transform),
            rewrite(expr.low, transform),
            rewrite(expr.high, transform),
        )
    elif isinstance(expr, InList):
        expr = InList(
            rewrite(expr.operand, transform),
            tuple(rewrite(i, transform) for i in expr.items),
        )
    elif isinstance(expr, Like):
        expr = Like(
            rewrite(expr.operand, transform),
            rewrite(expr.pattern, transform),
            negated=expr.negated,
        )
    elif isinstance(expr, Case):
        expr = Case(
            tuple(
                (rewrite(c, transform), rewrite(v, transform))
                for c, v in expr.whens
            ),
            rewrite(expr.default, transform) if expr.default is not None else None,
        )
    replacement = transform(expr)
    return replacement if replacement is not None else expr


def find_aggregates(expr: Expr) -> List[AggregateCall]:
    return [node for node in walk(expr) if isinstance(node, AggregateCall)]


def find_windows(expr: Expr) -> List[WindowCall]:
    return [node for node in walk(expr) if isinstance(node, WindowCall)]


def column_refs(expr: Expr) -> List[ColumnRef]:
    return [node for node in walk(expr) if isinstance(node, ColumnRef)]


# ---------------------------------------------------------------------------
# built-in scalar functions (T-SQL flavoured)
# ---------------------------------------------------------------------------


def _charindex(needle: Any, haystack: Any, start: Any = 1) -> Any:
    """T-SQL CHARINDEX: 1-based position of needle, 0 when absent."""
    if needle is None or haystack is None:
        return None
    pos = haystack.find(needle, max(int(start) - 1, 0))
    return pos + 1


def _substring(text: Any, start: Any, length: Any) -> Any:
    if text is None or start is None or length is None:
        return None
    begin = max(int(start) - 1, 0)
    return text[begin : begin + int(length)]


def _datalength(value: Any) -> Any:
    if value is None:
        return None
    if isinstance(value, str):
        return len(value.encode("utf-8"))
    if isinstance(value, (bytes, bytearray)):
        return len(value)
    if isinstance(value, uuid.UUID):
        return 16
    if isinstance(value, bool):
        return 1
    if isinstance(value, int):
        return 4 if -(2**31) <= value < 2**31 else 8
    if isinstance(value, float):
        return 8
    return len(str(value))


def _isnull(value: Any, replacement: Any) -> Any:
    return replacement if value is None else value


def _coalesce(*args: Any) -> Any:
    for value in args:
        if value is not None:
            return value
    return None


def _len(value: Any) -> Any:
    if value is None:
        return None
    if isinstance(value, str):
        return len(value.rstrip(" "))  # T-SQL LEN ignores trailing spaces
    return len(value)


_BUILTINS: dict[str, Callable[..., Any]] = {
    "charindex": _charindex,
    "substring": _substring,
    "datalength": _datalength,
    "isnull": _isnull,
    "coalesce": _coalesce,
    "len": _len,
    "upper": lambda v: None if v is None else v.upper(),
    "lower": lambda v: None if v is None else v.lower(),
    "ltrim": lambda v: None if v is None else v.lstrip(),
    "rtrim": lambda v: None if v is None else v.rstrip(),
    "abs": lambda v: None if v is None else abs(v),
    "round": lambda v, n=0: None if v is None else round(v, int(n)),
    "replace": lambda s, a, b: None
    if s is None or a is None or b is None
    else s.replace(a, b),
    "reverse": lambda v: None if v is None else v[::-1],
    "newid": uuid.uuid4,
    "str": lambda v: None if v is None else str(v),
    "floor": lambda v: None if v is None else int(v // 1),
    "ceiling": lambda v: None if v is None else -int(-v // 1),
    "sqrt": lambda v: None if v is None else v**0.5,
    "log": lambda v: None if v is None else __import__("math").log(v),
    "power": lambda b, e: None if b is None or e is None else b**e,
    "sign": lambda v: None if v is None else (v > 0) - (v < 0),
    "left": lambda s, n: None if s is None or n is None else s[: int(n)],
    "right": lambda s, n: None if s is None or n is None else s[-int(n) :] if n else "",
    "concat": lambda *a: "".join("" if v is None else str(v) for v in a),
}

#: aggregate names handled natively by the aggregation operators
BUILTIN_AGGREGATES = {"count", "sum", "min", "max", "avg", "count_big"}


def is_builtin_scalar(name: str) -> bool:
    return name.lower() in _BUILTINS


# ---------------------------------------------------------------------------
# LIKE pattern
# ---------------------------------------------------------------------------


def like_match(value: Optional[str], pattern: Optional[str]) -> Optional[bool]:
    """SQL LIKE with ``%`` and ``_`` wildcards (no escape support)."""
    if value is None or pattern is None:
        return None
    import re

    regex = "".join(
        ".*" if ch == "%" else "." if ch == "_" else re.escape(ch)
        for ch in pattern
    )
    return re.fullmatch(regex, value, flags=re.DOTALL) is not None


# ---------------------------------------------------------------------------
# compiler
# ---------------------------------------------------------------------------

#: a binder resolves a column reference to its index in the input row
Binder = Callable[[ColumnRef], int]

_ARITH = {
    "+": operator.add,
    "-": operator.sub,
    "*": operator.mul,
    "%": operator.mod,
}

_COMPARE = {
    "=": operator.eq,
    "<>": operator.ne,
    "!=": operator.ne,
    "<": operator.lt,
    "<=": operator.le,
    ">": operator.gt,
    ">=": operator.ge,
}


#: sentinel distinguishing "not cached" from a cached None result
_MEMO_MISS = object()


class ExpressionCompiler:
    """Compiles expression trees into ``row -> value`` closures."""

    def __init__(self, binder: Binder, library: Optional[FunctionLibrary] = None):
        self._binder = binder
        self._library = library

    def compile(self, expr: Expr) -> Callable[[Sequence[Any]], Any]:
        method = getattr(self, f"_compile_{type(expr).__name__.lower()}", None)
        if method is None:
            raise BindError(f"cannot compile expression node {type(expr).__name__}")
        return method(expr)

    # -- leaves --------------------------------------------------------------------

    def _compile_literal(self, expr: Literal):
        value = expr.value
        return lambda row: value

    def _compile_parameter(self, expr: Parameter):
        store, index = expr.store, expr.index
        return lambda row: store[index]

    def _compile_columnref(self, expr: ColumnRef):
        index = self._binder(expr)
        return lambda row: row[index]

    def _compile_boundref(self, expr: BoundRef):
        index = expr.index
        return lambda row: row[index]

    # -- operators ------------------------------------------------------------------

    def _compile_binaryop(self, expr: BinaryOp):
        op = expr.op.upper()
        left = self.compile(expr.left)
        right = self.compile(expr.right)
        if op == "AND":

            def and_eval(row):
                l_val = left(row)
                if l_val is False:
                    return False
                r_val = right(row)
                if r_val is False:
                    return False
                if l_val is None or r_val is None:
                    return None
                return True

            return and_eval
        if op == "OR":

            def or_eval(row):
                l_val = left(row)
                if l_val is True:
                    return True
                r_val = right(row)
                if r_val is True:
                    return True
                if l_val is None or r_val is None:
                    return None
                return False

            return or_eval
        if op in _COMPARE:
            compare = _COMPARE[op]

            def cmp_eval(row):
                l_val = left(row)
                if l_val is None:
                    return None
                r_val = right(row)
                if r_val is None:
                    return None
                return compare(l_val, r_val)

            return cmp_eval
        if op in _ARITH:
            arith = _ARITH[op]

            def arith_eval(row):
                l_val = left(row)
                if l_val is None:
                    return None
                r_val = right(row)
                if r_val is None:
                    return None
                return arith(l_val, r_val)

            return arith_eval
        if op == "/":

            def div_eval(row):
                l_val = left(row)
                if l_val is None:
                    return None
                r_val = right(row)
                if r_val is None:
                    return None
                if r_val == 0:
                    raise ExecutionError("division by zero")
                if isinstance(l_val, int) and isinstance(r_val, int):
                    # T-SQL integer division truncates toward zero
                    quotient = abs(l_val) // abs(r_val)
                    return quotient if (l_val >= 0) == (r_val >= 0) else -quotient
                return l_val / r_val

            return div_eval
        raise BindError(f"unknown binary operator {expr.op!r}")

    def _compile_unaryop(self, expr: UnaryOp):
        inner = self.compile(expr.operand)
        op = expr.op.upper()
        if op == "NOT":

            def not_eval(row):
                value = inner(row)
                return None if value is None else not value

            return not_eval
        if op == "-":
            return lambda row: None if (v := inner(row)) is None else -v
        if op == "+":
            return inner
        raise BindError(f"unknown unary operator {expr.op!r}")

    # -- functions -------------------------------------------------------------------

    #: memo-cache entries per deterministic UDF call site; beyond this
    #: the cache stops growing (a repeating-key workload stays cached)
    _MEMO_LIMIT = 4096

    def _compile_funccall(self, expr: FuncCall):
        arg_fns = [self.compile(a) for a in expr.args]
        # registered UDFs take precedence, so a database can override a
        # built-in (e.g. DATALENGTH over FILESTREAM pointers)
        if self._library is not None:
            udf = self._library.scalar(expr.name)
            if udf is not None:
                if (
                    getattr(udf, "is_deterministic", None) is True
                    and getattr(udf, "data_access", "NONE") == "NONE"
                ):
                    return self._memoised_udf(udf, arg_fns)
                return lambda row: udf(*[fn(row) for fn in arg_fns])
        builtin = _BUILTINS.get(expr.name.lower())
        if builtin is not None:
            return lambda row: builtin(*[fn(row) for fn in arg_fns])
        raise BindError(f"unknown function {expr.name!r}")

    def _memoised_udf(self, udf, arg_fns):
        """Per-call-site memoisation — sound only because the verifier
        proved the UDF IsDeterministic with DataAccessKind.None."""
        cache: dict = {}
        limit = self._MEMO_LIMIT

        def memo_eval(row):
            args = tuple(fn(row) for fn in arg_fns)
            try:
                hit = cache.get(args, _MEMO_MISS)
            except TypeError:  # unhashable argument — just call
                return udf(*args)
            if hit is not _MEMO_MISS:
                return hit
            value = udf(*args)
            if len(cache) < limit:
                cache[args] = value
            return value

        return memo_eval

    def _compile_aggregatecall(self, expr: AggregateCall):
        raise BindError(
            f"aggregate {expr.name!r} used outside GROUP BY/SELECT context"
        )

    def _compile_windowcall(self, expr: WindowCall):
        raise BindError(
            f"window function {expr.name!r} must be planned, not compiled directly"
        )

    # -- predicates ------------------------------------------------------------------

    def _compile_isnull(self, expr: IsNull):
        inner = self.compile(expr.operand)
        if expr.negated:
            return lambda row: inner(row) is not None
        return lambda row: inner(row) is None

    def _compile_between(self, expr: Between):
        value = self.compile(expr.operand)
        low = self.compile(expr.low)
        high = self.compile(expr.high)

        def between_eval(row):
            v = value(row)
            lo = low(row)
            hi = high(row)
            if v is None or lo is None or hi is None:
                return None
            return lo <= v <= hi

        return between_eval

    def _compile_inlist(self, expr: InList):
        value = self.compile(expr.operand)
        item_fns = [self.compile(i) for i in expr.items]

        def in_eval(row):
            v = value(row)
            if v is None:
                return None
            saw_null = False
            for fn in item_fns:
                item = fn(row)
                if item is None:
                    saw_null = True
                elif item == v:
                    return True
            return None if saw_null else False

        return in_eval

    def _compile_like(self, expr: Like):
        value = self.compile(expr.operand)
        pattern = self.compile(expr.pattern)

        def like_eval(row):
            result = like_match(value(row), pattern(row))
            if result is None:
                return None
            return not result if expr.negated else result

        return like_eval

    def _compile_case(self, expr: Case):
        whens = [(self.compile(c), self.compile(v)) for c, v in expr.whens]
        default = self.compile(expr.default) if expr.default is not None else None

        def case_eval(row):
            for cond, value in whens:
                if cond(row) is True:
                    return value(row)
            return default(row) if default is not None else None

        return case_eval

    # -- batch compilation -------------------------------------------------------

    def compile_batch(self, expr: Expr) -> Callable[[Sequence[Sequence[Any]]], List[Any]]:
        """Compile an expression into a ``batch -> list of values`` closure.

        Subtrees proved safe by :func:`batch_safe` are vectorised into
        whole-batch list comprehensions (one closure call per batch
        instead of per row).  Anything else — division/modulo (may
        raise where row mode's Kleene short-circuit would have skipped
        evaluation), function calls, LIKE, CASE — falls back to mapping
        the row-compiled closure over the batch, which preserves
        short-circuit semantics and UDF memoisation exactly while still
        presenting the batch interface."""
        if batch_safe(expr):
            method = getattr(self, f"_batch_{type(expr).__name__.lower()}")
            return method(expr)
        row_fn = self.compile(expr)
        return lambda batch: [row_fn(row) for row in batch]

    def _batch_literal(self, expr: Literal):
        value = expr.value
        return lambda batch: [value] * len(batch)

    def _batch_parameter(self, expr: Parameter):
        store, index = expr.store, expr.index
        return lambda batch: [store[index]] * len(batch)

    def _batch_columnref(self, expr: ColumnRef):
        index = self._binder(expr)
        return lambda batch: [row[index] for row in batch]

    def _batch_boundref(self, expr: BoundRef):
        index = expr.index
        return lambda batch: [row[index] for row in batch]

    def _batch_binaryop(self, expr: BinaryOp):
        op = expr.op.upper()
        left = self.compile_batch(expr.left)
        right = self.compile_batch(expr.right)
        if op == "AND":
            return lambda batch: [
                False
                if l is False or r is False
                else (None if l is None or r is None else True)
                for l, r in zip(left(batch), right(batch))
            ]
        if op == "OR":
            return lambda batch: [
                True
                if l is True or r is True
                else (None if l is None or r is None else False)
                for l, r in zip(left(batch), right(batch))
            ]
        fn = _COMPARE.get(op) or _ARITH.get(op)
        if (
            isinstance(expr.right, Literal)
            and not isinstance(expr.right, Parameter)
            and expr.right.value is not None
        ):
            constant = expr.right.value
            return lambda batch: [
                None if l is None else fn(l, constant) for l in left(batch)
            ]
        return lambda batch: [
            None if l is None or r is None else fn(l, r)
            for l, r in zip(left(batch), right(batch))
        ]

    def _batch_unaryop(self, expr: UnaryOp):
        inner = self.compile_batch(expr.operand)
        op = expr.op.upper()
        if op == "NOT":
            return lambda batch: [
                None if v is None else not v for v in inner(batch)
            ]
        if op == "-":
            return lambda batch: [
                None if v is None else -v for v in inner(batch)
            ]
        return inner  # unary '+'

    def _batch_isnull(self, expr: IsNull):
        inner = self.compile_batch(expr.operand)
        if expr.negated:
            return lambda batch: [v is not None for v in inner(batch)]
        return lambda batch: [v is None for v in inner(batch)]

    def _batch_between(self, expr: Between):
        value = self.compile_batch(expr.operand)
        low = self.compile_batch(expr.low)
        high = self.compile_batch(expr.high)
        return lambda batch: [
            None if v is None or lo is None or hi is None else lo <= v <= hi
            for v, lo, hi in zip(value(batch), low(batch), high(batch))
        ]

    def _batch_inlist(self, expr: InList):
        value = self.compile_batch(expr.operand)
        if any(isinstance(item, Parameter) for item in expr.items):
            # parameter slots change between executions of a cached plan:
            # rebuild the membership set per batch instead of baking it
            nodes = tuple(expr.items)

            def dynamic(batch):
                items = [node.value for node in nodes]
                saw_null = any(item is None for item in items)
                members = frozenset(i for i in items if i is not None)
                absent = None if saw_null else False
                return [
                    None if v is None else (True if v in members else absent)
                    for v in value(batch)
                ]

            return dynamic
        items = [item.value for item in expr.items]
        saw_null = any(item is None for item in items)
        members = frozenset(item for item in items if item is not None)
        absent = None if saw_null else False
        return lambda batch: [
            None if v is None else (True if v in members else absent)
            for v in value(batch)
        ]


#: binary operators safe to evaluate eagerly over a whole batch: the
#: Kleene connectives, comparisons, and raise-free arithmetic ('/' and
#: '%' stay row-at-a-time — eager evaluation could divide by zero on a
#: row whose result short-circuiting would have discarded)
_BATCH_SAFE_BINOPS = {"AND", "OR", "+", "-", "*"} | set(_COMPARE)


def batch_safe(expr: Expr) -> bool:
    """Can ``expr`` be vectorised without changing semantics?

    A subtree qualifies only when evaluating it on *every* row of a
    batch is indistinguishable from row mode, where AND/OR/comparison
    short-circuiting may skip operand evaluation entirely.  That rules
    out anything that can raise or carry side effects: division and
    modulo, function calls (UDFs may be non-deterministic or
    data-accessing), LIKE (regex compilation per row), and CASE (lazy
    branch evaluation is observable)."""
    if isinstance(expr, (Literal, ColumnRef, BoundRef)):
        return True
    if isinstance(expr, IsNull):
        return batch_safe(expr.operand)
    if isinstance(expr, Between):
        return (
            batch_safe(expr.operand)
            and batch_safe(expr.low)
            and batch_safe(expr.high)
        )
    if isinstance(expr, InList):
        return batch_safe(expr.operand) and all(
            isinstance(item, Literal) for item in expr.items
        )
    if isinstance(expr, UnaryOp):
        return expr.op.upper() in {"NOT", "-", "+"} and batch_safe(expr.operand)
    if isinstance(expr, BinaryOp):
        return (
            expr.op.upper() in _BATCH_SAFE_BINOPS
            and batch_safe(expr.left)
            and batch_safe(expr.right)
        )
    return False


def expression_to_sql(expr: Expr) -> str:
    """Render an expression back to SQL-ish text (for EXPLAIN output)."""
    if isinstance(expr, Literal):
        if expr.value is None:
            return "NULL"
        if isinstance(expr.value, str):
            return "'" + expr.value.replace("'", "''") + "'"
        return str(expr.value)
    if isinstance(expr, ColumnRef):
        return str(expr)
    if isinstance(expr, BoundRef):
        return expr.label or f"$col{expr.index}"
    if isinstance(expr, BinaryOp):
        return (
            f"({expression_to_sql(expr.left)} {expr.op} "
            f"{expression_to_sql(expr.right)})"
        )
    if isinstance(expr, UnaryOp):
        return f"({expr.op} {expression_to_sql(expr.operand)})"
    if isinstance(expr, FuncCall):
        args = ", ".join(expression_to_sql(a) for a in expr.args)
        return f"{expr.name}({args})"
    if isinstance(expr, AggregateCall):
        if expr.star:
            return f"{expr.name}(*)"
        inner = ", ".join(expression_to_sql(a) for a in expr.args)
        prefix = "DISTINCT " if expr.distinct else ""
        return f"{expr.name}({prefix}{inner})"
    if isinstance(expr, WindowCall):
        order = ", ".join(
            f"{expression_to_sql(e)}{' DESC' if desc else ''}"
            for e, desc in expr.order_by
        )
        return f"{expr.name}() OVER (ORDER BY {order})"
    if isinstance(expr, IsNull):
        suffix = "IS NOT NULL" if expr.negated else "IS NULL"
        return f"({expression_to_sql(expr.operand)} {suffix})"
    if isinstance(expr, Between):
        return (
            f"({expression_to_sql(expr.operand)} BETWEEN "
            f"{expression_to_sql(expr.low)} AND {expression_to_sql(expr.high)})"
        )
    if isinstance(expr, InList):
        items = ", ".join(expression_to_sql(i) for i in expr.items)
        return f"({expression_to_sql(expr.operand)} IN ({items}))"
    if isinstance(expr, Like):
        keyword = "NOT LIKE" if expr.negated else "LIKE"
        return (
            f"({expression_to_sql(expr.operand)} {keyword} "
            f"{expression_to_sql(expr.pattern)})"
        )
    if isinstance(expr, Case):
        parts = ["CASE"]
        for cond, value in expr.whens:
            parts.append(
                f"WHEN {expression_to_sql(cond)} THEN {expression_to_sql(value)}"
            )
        if expr.default is not None:
            parts.append(f"ELSE {expression_to_sql(expr.default)}")
        parts.append("END")
        return " ".join(parts)
    return repr(expr)
