"""An extensible relational engine modelled on the SQL Server 2008
features the paper relies on: FILESTREAM BLOBs, CLR-style UDF/TVF/UDA/UDT
contracts, row/page compression, and parallel query plans."""

from .database import Database
from .errors import (
    BindError,
    ConstraintViolation,
    DuplicateKeyError,
    EngineError,
    ExecutionError,
    FileStreamError,
    SqlSyntaxError,
    StorageError,
    TransactionError,
    TypeMismatchError,
    UdfError,
)
from .filestream import FileStreamStore
from .schema import Column, ForeignKey, TableSchema
from .uda_library import register_statistics
from .transactions import Transaction
from .types import SqlType, UdtCodec
from .udf import (
    FunctionLibrary,
    ScalarUdf,
    SimpleTvf,
    TableValuedFunction,
    UserDefinedAggregate,
)

__all__ = [
    "BindError",
    "Column",
    "ConstraintViolation",
    "Database",
    "DuplicateKeyError",
    "EngineError",
    "ExecutionError",
    "FileStreamError",
    "FileStreamStore",
    "ForeignKey",
    "FunctionLibrary",
    "ScalarUdf",
    "register_statistics",
    "SimpleTvf",
    "SqlSyntaxError",
    "SqlType",
    "StorageError",
    "TableSchema",
    "TableValuedFunction",
    "Transaction",
    "TransactionError",
    "TypeMismatchError",
    "UdfError",
    "UdtCodec",
    "UserDefinedAggregate",
]
