"""Error hierarchy for the relational engine.

Mirrors the coarse error classes a SQL Server client would see: syntax
errors from the front end, binding errors from the catalog/planner,
runtime execution errors, and storage/constraint failures.
"""

from __future__ import annotations


class EngineError(Exception):
    """Base class for every error raised by :mod:`repro.engine`."""


class SqlSyntaxError(EngineError):
    """The SQL text could not be tokenised or parsed."""

    def __init__(self, message: str, line: int = 0, column: int = 0):
        self.line = line
        self.column = column
        if line:
            message = f"{message} (line {line}, column {column})"
        super().__init__(message)


class BindError(EngineError):
    """A name (table, column, function, type) could not be resolved,
    or was used in a way its definition does not allow."""


class TypeMismatchError(EngineError):
    """A value is incompatible with the declared SQL type."""


class ConstraintViolation(EngineError):
    """A PRIMARY KEY, FOREIGN KEY, or NOT NULL constraint was violated."""


class DuplicateKeyError(ConstraintViolation):
    """A unique/primary key already contains the inserted key."""


class StorageError(EngineError):
    """Low-level storage failure (page overflow, bad record id, ...)."""


class FileStreamError(StorageError):
    """Failure inside the FileStream BLOB store."""


class TransactionError(EngineError):
    """Invalid transaction state transition (e.g. COMMIT without BEGIN)."""


class ExecutionError(EngineError):
    """Runtime failure while executing a physical plan."""


class UdfError(ExecutionError):
    """A user-defined function, aggregate, or type misbehaved."""
