"""SQL front end: lexer, statement AST, parser."""

from . import ast
from .lexer import tokenize
from .parser import parse_sql, parse_statement

__all__ = ["ast", "parse_sql", "parse_statement", "tokenize"]
