"""Recursive-descent parser for the supported T-SQL subset.

Produces the statement AST of :mod:`repro.engine.sql.ast` with scalar
expressions from :mod:`repro.engine.expressions`. The subset covers every
statement the paper shows: the FILESTREAM ``CREATE TABLE``, the
``OPENROWSET BULK`` import, TVF table sources, ``CROSS APPLY``, grouped
aggregation with UDAs, and ``ROW_NUMBER() OVER (ORDER BY ...)``.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from ..errors import SqlSyntaxError
from ..expressions import (
    AggregateCall,
    Between,
    BinaryOp,
    Case,
    ColumnRef,
    Expr,
    FuncCall,
    InList,
    IsNull,
    Like,
    Literal,
    UnaryOp,
    WindowCall,
)
from . import ast
from .lexer import EOF, IDENT, KEYWORD, NUMBER, OP, PUNCT, STRING, Token, tokenize

#: function names the parser folds into AggregateCall nodes; registered
#: UDAs are recognised later, at bind time
_AGGREGATE_NAMES = {"count", "count_big", "sum", "min", "max", "avg"}

_WINDOW_NAMES = {"row_number"}

_TYPE_NAMES = {
    "int",
    "bigint",
    "smallint",
    "tinyint",
    "bit",
    "float",
    "real",
    "char",
    "nchar",
    "varchar",
    "nvarchar",
    "binary",
    "varbinary",
    "uniqueidentifier",
    "datetime",
}


class Parser:
    def __init__(self, text: str):
        self._text = text
        self._tokens = tokenize(text)
        self._pos = 0

    # -- token helpers ---------------------------------------------------------------

    def _peek(self, offset: int = 0) -> Token:
        index = min(self._pos + offset, len(self._tokens) - 1)
        return self._tokens[index]

    def _next(self) -> Token:
        token = self._tokens[self._pos]
        if token.type != EOF:
            self._pos += 1
        return token

    def _error(self, message: str) -> SqlSyntaxError:
        token = self._peek()
        return SqlSyntaxError(
            f"{message} (found {token.value!r})", token.line, token.column
        )

    def _accept_keyword(self, *words: str) -> Optional[Token]:
        if self._peek().matches_keyword(*words):
            return self._next()
        return None

    def _expect_keyword(self, *words: str) -> Token:
        token = self._accept_keyword(*words)
        if token is None:
            raise self._error(f"expected {' or '.join(words)}")
        return token

    def _accept_punct(self, value: str) -> Optional[Token]:
        token = self._peek()
        if token.type == PUNCT and token.value == value:
            return self._next()
        return None

    def _expect_punct(self, value: str) -> Token:
        token = self._accept_punct(value)
        if token is None:
            raise self._error(f"expected {value!r}")
        return token

    def _accept_op(self, value: str) -> Optional[Token]:
        token = self._peek()
        if token.type == OP and token.value == value:
            return self._next()
        return None

    def _expect_ident(self) -> str:
        token = self._peek()
        if token.type == IDENT:
            self._next()
            return token.value
        # a few keywords double as identifiers in practice (e.g. a column
        # named "key" or "row"); allow keyword-as-identifier here
        if token.type == KEYWORD:
            self._next()
            return token.value
        raise self._error("expected identifier")

    # -- entry points -----------------------------------------------------------------

    def parse_statements(self) -> List[object]:
        statements: List[object] = []
        while self._peek().type != EOF:
            start = self._peek().offset
            statement = self._parse_statement()
            end = self._peek().offset
            # each statement carries its own SQL text, so the metrics
            # registry can key execution stats by statement
            statement.source_sql = self._text[start:end].rstrip().rstrip(";")
            inner = getattr(statement, "select", None)
            if inner is not None:
                # EXPLAIN wraps a select; the planner sees the inner
                # statement, so lint pragmas must travel with it
                inner.source_sql = statement.source_sql
            statements.append(statement)
            while self._accept_punct(";"):
                pass
        return statements

    def parse_single(self) -> object:
        statements = self.parse_statements()
        if len(statements) != 1:
            raise SqlSyntaxError(
                f"expected exactly one statement, found {len(statements)}"
            )
        return statements[0]

    # -- statements ---------------------------------------------------------------------

    def _parse_statement(self) -> object:
        token = self._peek()
        if token.matches_keyword("SELECT"):
            return self._parse_select()
        if token.matches_keyword("EXPLAIN"):
            self._next()
            analyze = bool(self._accept_keyword("ANALYZE"))
            return ast.ExplainStmt(self._parse_select(), analyze=analyze)
        if token.matches_keyword("ANALYZE"):
            self._next()
            return ast.UpdateStatisticsStmt(self._expect_ident())
        if token.matches_keyword("INSERT"):
            return self._parse_insert()
        if token.matches_keyword("DELETE"):
            return self._parse_delete()
        if token.matches_keyword("UPDATE"):
            return self._parse_update()
        if token.matches_keyword("CREATE"):
            return self._parse_create()
        if token.matches_keyword("DROP"):
            self._next()
            self._expect_keyword("TABLE")
            return ast.DropTableStmt(self._expect_ident())
        if token.matches_keyword("TRUNCATE"):
            self._next()
            self._expect_keyword("TABLE")
            return ast.TruncateStmt(self._expect_ident())
        if token.matches_keyword("SET"):
            return self._parse_set()
        raise self._error("expected a statement")

    def _parse_set(self) -> object:
        self._expect_keyword("SET")
        if self._accept_keyword("STATISTICS"):
            option = self._expect_ident().upper()
            if option not in ("TIME", "IO"):
                raise self._error(
                    "expected TIME or IO after SET STATISTICS"
                )
            enabled = self._expect_keyword("ON", "OFF").value == "ON"
            return ast.SetStatisticsStmt(option, enabled)
        name = self._expect_ident().upper()
        if name in ("PLAN_VERIFY", "PLAN_CACHE"):
            enabled = self._expect_keyword("ON", "OFF").value == "ON"
            return ast.SetOptionStmt(name, int(enabled))
        if name not in ("MAX_DOP", "SLOW_QUERY_THRESHOLD"):
            raise self._error(
                "expected STATISTICS, MAX_DOP, PLAN_CACHE, PLAN_VERIFY, "
                "or SLOW_QUERY_THRESHOLD after SET"
            )
        token = self._peek()
        if token.type != NUMBER:
            raise self._error(f"expected a number after SET {name}")
        self._next()
        return ast.SetOptionStmt(name, int(token.value))

    # -- SELECT -----------------------------------------------------------------------

    def _parse_select(self) -> ast.SelectStmt:
        self._expect_keyword("SELECT")
        distinct = bool(self._accept_keyword("DISTINCT"))
        top = None
        if self._accept_keyword("TOP"):
            token = self._peek()
            if token.type != NUMBER:
                raise self._error("expected a number after TOP")
            self._next()
            top = int(token.value)
        items = self._parse_select_items()
        source = None
        joins: List[ast.JoinClause] = []
        where = None
        group_by: List[Expr] = []
        having = None
        order_by: List[Tuple[Expr, bool]] = []
        maxdop = None
        if self._accept_keyword("FROM"):
            source = self._parse_table_source()
            while True:
                if self._accept_keyword("JOIN") or (
                    self._peek().matches_keyword("INNER")
                    and self._peek(1).matches_keyword("JOIN")
                    and (self._next(), self._next())
                ):
                    join_source = self._parse_table_source()
                    self._expect_keyword("ON")
                    on_expr = self._parse_expr()
                    joins.append(ast.JoinClause("JOIN", join_source, on_expr))
                elif self._peek().matches_keyword("CROSS"):
                    self._next()
                    self._expect_keyword("APPLY")
                    apply_source = self._parse_table_source()
                    joins.append(ast.JoinClause("CROSS APPLY", apply_source))
                else:
                    break
        if self._accept_keyword("WHERE"):
            where = self._parse_expr()
        if self._accept_keyword("GROUP"):
            self._expect_keyword("BY")
            group_by.append(self._parse_expr())
            while self._accept_punct(","):
                group_by.append(self._parse_expr())
        if self._accept_keyword("HAVING"):
            having = self._parse_expr()
        if self._accept_keyword("ORDER"):
            self._expect_keyword("BY")
            order_by.append(self._parse_order_item())
            while self._accept_punct(","):
                order_by.append(self._parse_order_item())
        if self._accept_keyword("OPTION"):
            self._expect_punct("(")
            self._expect_keyword("MAXDOP")
            token = self._peek()
            if token.type != NUMBER:
                raise self._error("expected a number after MAXDOP")
            self._next()
            maxdop = int(token.value)
            self._expect_punct(")")
        return ast.SelectStmt(
            items=items,
            source=source,
            joins=joins,
            where=where,
            group_by=group_by,
            having=having,
            order_by=order_by,
            top=top,
            distinct=distinct,
            maxdop=maxdop,
        )

    def _parse_order_item(self) -> Tuple[Expr, bool]:
        expr = self._parse_expr()
        descending = False
        if self._accept_keyword("DESC"):
            descending = True
        elif self._accept_keyword("ASC"):
            descending = False
        return expr, descending

    def _parse_select_items(self) -> List[ast.SelectItem]:
        items = [self._parse_select_item()]
        while self._accept_punct(","):
            items.append(self._parse_select_item())
        return items

    def _parse_select_item(self) -> ast.SelectItem:
        token = self._peek()
        if token.type == OP and token.value == "*":
            self._next()
            return ast.SelectItem(star=True)
        # alias.*
        if (
            token.type == IDENT
            and self._peek(1).type == PUNCT
            and self._peek(1).value == "."
            and self._peek(2).type == OP
            and self._peek(2).value == "*"
        ):
            qualifier = self._next().value
            self._next()
            self._next()
            return ast.SelectItem(star=True, star_qualifier=qualifier)
        expr = self._parse_expr()
        alias = None
        if self._accept_keyword("AS"):
            alias = self._expect_ident()
        elif self._peek().type == IDENT:
            alias = self._next().value
        return ast.SelectItem(expr=expr, alias=alias)

    def _parse_table_source(self):
        if self._accept_punct("("):
            select = self._parse_select()
            self._expect_punct(")")
            alias = self._parse_optional_alias()
            return ast.SubqueryRef(select, alias)
        if self._peek().matches_keyword("OPENROWSET"):
            self._next()
            self._expect_punct("(")
            self._expect_keyword("BULK")
            path_token = self._peek()
            if path_token.type != STRING:
                raise self._error("expected a file path string after BULK")
            self._next()
            self._expect_punct(",")
            self._expect_keyword("SINGLE_BLOB")
            self._expect_punct(")")
            alias = self._parse_optional_alias()
            return ast.OpenRowsetRef(path_token.value, alias)
        name = self._expect_ident()
        if self._accept_punct("("):
            args: List[Expr] = []
            if not self._accept_punct(")"):
                args.append(self._parse_expr())
                while self._accept_punct(","):
                    args.append(self._parse_expr())
                self._expect_punct(")")
            alias = self._parse_optional_alias()
            return ast.TvfRef(name, tuple(args), alias)
        alias = self._parse_optional_alias()
        return ast.TableRef(name, alias)

    def _parse_optional_alias(self) -> Optional[str]:
        if self._accept_keyword("AS"):
            return self._expect_ident()
        if self._peek().type == IDENT:
            return self._next().value
        return None

    # -- INSERT / DELETE -----------------------------------------------------------------

    def _parse_insert(self) -> ast.InsertStmt:
        self._expect_keyword("INSERT")
        self._accept_keyword("INTO")
        table = self._expect_ident()
        columns: List[str] = []
        if self._accept_punct("("):
            columns.append(self._expect_ident())
            while self._accept_punct(","):
                columns.append(self._expect_ident())
            self._expect_punct(")")
        if self._accept_keyword("VALUES"):
            rows: List[List[Expr]] = []
            while True:
                self._expect_punct("(")
                row = [self._parse_expr()]
                while self._accept_punct(","):
                    row.append(self._parse_expr())
                self._expect_punct(")")
                rows.append(row)
                if not self._accept_punct(","):
                    break
            return ast.InsertStmt(table, columns, values=rows)
        select = self._parse_select()
        return ast.InsertStmt(table, columns, select=select)

    def _parse_update(self):
        self._expect_keyword("UPDATE")
        if self._accept_keyword("STATISTICS"):
            return ast.UpdateStatisticsStmt(self._expect_ident())
        table = self._expect_ident()
        self._expect_keyword("SET")
        assignments = []
        while True:
            column = self._expect_ident()
            if self._accept_op("=") is None:
                raise self._error("expected '=' in SET assignment")
            assignments.append((column, self._parse_expr()))
            if not self._accept_punct(","):
                break
        where = None
        if self._accept_keyword("WHERE"):
            where = self._parse_expr()
        return ast.UpdateStmt(table, assignments, where)

    def _parse_delete(self) -> ast.DeleteStmt:
        self._expect_keyword("DELETE")
        self._accept_keyword("FROM")
        table = self._expect_ident()
        where = None
        if self._accept_keyword("WHERE"):
            where = self._parse_expr()
        return ast.DeleteStmt(table, where)

    # -- CREATE -----------------------------------------------------------------------

    def _parse_create(self):
        self._expect_keyword("CREATE")
        if self._accept_keyword("TABLE"):
            return self._parse_create_table()
        clustered = bool(self._accept_keyword("CLUSTERED"))
        if self._accept_keyword("INDEX") or clustered and self._expect_keyword("INDEX"):
            name = self._expect_ident()
            self._expect_keyword("ON")
            table = self._expect_ident()
            self._expect_punct("(")
            columns = [self._expect_ident()]
            # tolerate ASC/DESC markers
            self._accept_keyword("ASC", "DESC")
            while self._accept_punct(","):
                columns.append(self._expect_ident())
                self._accept_keyword("ASC", "DESC")
            self._expect_punct(")")
            return ast.CreateIndexStmt(name, table, columns)
        raise self._error("expected TABLE or INDEX after CREATE")

    def _parse_create_table(self) -> ast.CreateTableStmt:
        name = self._expect_ident()
        self._expect_punct("(")
        columns: List[ast.ColumnDef] = []
        primary_key: List[str] = []
        foreign_keys: List[ast.ForeignKeyDef] = []
        while True:
            if self._accept_keyword("PRIMARY"):
                self._expect_keyword("KEY")
                self._accept_keyword("CLUSTERED")
                self._expect_punct("(")
                primary_key.append(self._expect_ident())
                while self._accept_punct(","):
                    primary_key.append(self._expect_ident())
                self._expect_punct(")")
            elif self._accept_keyword("FOREIGN"):
                self._expect_keyword("KEY")
                self._expect_punct("(")
                fk_cols = [self._expect_ident()]
                while self._accept_punct(","):
                    fk_cols.append(self._expect_ident())
                self._expect_punct(")")
                self._expect_keyword("REFERENCES")
                parent = self._expect_ident()
                self._expect_punct("(")
                parent_cols = [self._expect_ident()]
                while self._accept_punct(","):
                    parent_cols.append(self._expect_ident())
                self._expect_punct(")")
                foreign_keys.append(
                    ast.ForeignKeyDef(fk_cols, parent, parent_cols)
                )
            else:
                columns.append(self._parse_column_def())
            if not self._accept_punct(","):
                break
        self._expect_punct(")")
        compression = "NONE"
        storage = "heap"
        segment_rows: Optional[int] = None
        if self._accept_keyword("WITH"):
            self._expect_punct("(")
            while True:
                option = self._expect_keyword(
                    "DATA_COMPRESSION", "STORAGE", "SEGMENT_ROWS"
                )
                if self._accept_op("=") is None:
                    raise self._error(f"expected '=' after {option.value}")
                if option.value == "DATA_COMPRESSION":
                    token = self._expect_keyword("ROW", "PAGE", "NONE")
                    compression = token.value
                elif option.value == "STORAGE":
                    token = self._peek()
                    if token.type == STRING:
                        self._next()
                        engine = token.value
                    elif token.matches_keyword("ROW", "STORAGE"):
                        # unquoted; tolerated for symmetry with
                        # DATA_COMPRESSION but 'HEAP'/'COLUMN' is canonical
                        engine = self._next().value
                    elif token.type == IDENT:
                        engine = self._next().value
                    else:
                        raise self._error(
                            "expected a storage engine name ('HEAP' or "
                            "'COLUMN') after STORAGE ="
                        )
                    storage = engine.lower()
                    if storage not in ("heap", "column"):
                        raise self._error(
                            f"unknown storage engine {engine!r} "
                            "(expected 'HEAP' or 'COLUMN')"
                        )
                else:  # SEGMENT_ROWS
                    token = self._peek()
                    if token.type != NUMBER:
                        raise self._error(
                            "expected a row count after SEGMENT_ROWS ="
                        )
                    self._next()
                    segment_rows = int(token.value)
                if not self._accept_punct(","):
                    break
            self._expect_punct(")")
        filestream_group = None
        if self._accept_keyword("FILESTREAM_ON"):
            filestream_group = self._expect_ident()
        # collect inline PRIMARY KEY markers
        inline_pk = [c.name for c in columns if c.primary_key]
        if inline_pk and primary_key:
            raise SqlSyntaxError(
                f"table {name!r} declares both inline and table-level PRIMARY KEY"
            )
        return ast.CreateTableStmt(
            name=name,
            columns=columns,
            primary_key=primary_key or inline_pk,
            foreign_keys=foreign_keys,
            compression=compression,
            filestream_group=filestream_group,
            storage=storage,
            segment_rows=segment_rows,
        )

    def _parse_column_def(self) -> ast.ColumnDef:
        name = self._expect_ident()
        type_token = self._peek()
        if type_token.type not in (IDENT, KEYWORD):
            raise self._error("expected a type name")
        type_name = self._next().value
        if type_name.lower() not in _TYPE_NAMES:
            # treat as a UDT name; resolution happens at bind time
            pass
        length: Optional[int] = None
        if self._accept_punct("("):
            token = self._peek()
            if token.type == NUMBER:
                self._next()
                length = int(token.value)
            elif token.type == IDENT and token.value.upper() == "MAX":
                self._next()
                length = -1
            else:
                raise self._error("expected a length or MAX")
            self._expect_punct(")")
        col = ast.ColumnDef(name=name, type_name=type_name, length=length)
        while True:
            if self._accept_keyword("FILESTREAM"):
                col.filestream = True
            elif self._accept_keyword("ROWGUIDCOL"):
                col.rowguidcol = True
            elif self._accept_keyword("IDENTITY"):
                col.identity = True
                if self._accept_punct("("):  # IDENTITY(1,1)
                    while not self._accept_punct(")"):
                        self._next()
            elif self._accept_keyword("NOT"):
                self._expect_keyword("NULL")
                col.nullable = False
            elif self._accept_keyword("NULL"):
                col.nullable = True
            elif self._accept_keyword("PRIMARY"):
                self._expect_keyword("KEY")
                col.primary_key = True
                col.nullable = False
            else:
                break
        return col

    # -- expressions ---------------------------------------------------------------------

    def _parse_expr(self) -> Expr:
        return self._parse_or()

    def _parse_or(self) -> Expr:
        left = self._parse_and()
        while self._accept_keyword("OR"):
            left = BinaryOp("OR", left, self._parse_and())
        return left

    def _parse_and(self) -> Expr:
        left = self._parse_not()
        while self._accept_keyword("AND"):
            left = BinaryOp("AND", left, self._parse_not())
        return left

    def _parse_not(self) -> Expr:
        if self._accept_keyword("NOT"):
            return UnaryOp("NOT", self._parse_not())
        return self._parse_predicate()

    def _parse_predicate(self) -> Expr:
        left = self._parse_additive()
        token = self._peek()
        if token.type == OP and token.value in ("=", "<>", "<", "<=", ">", ">="):
            self._next()
            return BinaryOp(token.value, left, self._parse_additive())
        if token.matches_keyword("IS"):
            self._next()
            negated = bool(self._accept_keyword("NOT"))
            self._expect_keyword("NULL")
            return IsNull(left, negated=negated)
        negated = False
        if token.matches_keyword("NOT"):
            nxt = self._peek(1)
            if nxt.matches_keyword("LIKE", "IN", "BETWEEN"):
                self._next()
                negated = True
                token = self._peek()
        if token.matches_keyword("LIKE"):
            self._next()
            return Like(left, self._parse_additive(), negated=negated)
        if token.matches_keyword("IN"):
            self._next()
            self._expect_punct("(")
            items = [self._parse_expr()]
            while self._accept_punct(","):
                items.append(self._parse_expr())
            self._expect_punct(")")
            in_expr = InList(left, tuple(items))
            return UnaryOp("NOT", in_expr) if negated else in_expr
        if token.matches_keyword("BETWEEN"):
            self._next()
            low = self._parse_additive()
            self._expect_keyword("AND")
            high = self._parse_additive()
            between = Between(left, low, high)
            return UnaryOp("NOT", between) if negated else between
        return left

    def _parse_additive(self) -> Expr:
        left = self._parse_multiplicative()
        while True:
            token = self._peek()
            if token.type == OP and token.value in ("+", "-"):
                self._next()
                left = BinaryOp(token.value, left, self._parse_multiplicative())
            else:
                return left

    def _parse_multiplicative(self) -> Expr:
        left = self._parse_unary()
        while True:
            token = self._peek()
            if token.type == OP and token.value in ("*", "/", "%"):
                self._next()
                left = BinaryOp(token.value, left, self._parse_unary())
            else:
                return left

    def _parse_unary(self) -> Expr:
        token = self._peek()
        if token.type == OP and token.value in ("-", "+"):
            self._next()
            return UnaryOp(token.value, self._parse_unary())
        return self._parse_primary()

    def _parse_primary(self) -> Expr:
        token = self._peek()
        if token.type == NUMBER:
            self._next()
            text = token.value
            if "." in text or "e" in text or "E" in text:
                return Literal(float(text))
            return Literal(int(text))
        if token.type == STRING:
            self._next()
            return Literal(token.value)
        if token.matches_keyword("NULL"):
            self._next()
            return Literal(None)
        if token.matches_keyword("CASE"):
            return self._parse_case()
        if self._accept_punct("("):
            expr = self._parse_expr()
            self._expect_punct(")")
            return expr
        if token.type == IDENT:
            return self._parse_name_or_call()
        raise self._error("expected an expression")

    def _parse_case(self) -> Expr:
        self._expect_keyword("CASE")
        whens: List[Tuple[Expr, Expr]] = []
        while self._accept_keyword("WHEN"):
            cond = self._parse_expr()
            self._expect_keyword("THEN")
            value = self._parse_expr()
            whens.append((cond, value))
        default = None
        if self._accept_keyword("ELSE"):
            default = self._parse_expr()
        self._expect_keyword("END")
        if not whens:
            raise self._error("CASE requires at least one WHEN")
        return Case(tuple(whens), default)

    def _parse_name_or_call(self) -> Expr:
        name = self._next().value
        # function call?
        if self._accept_punct("("):
            lowered = name.lower()
            distinct = bool(self._accept_keyword("DISTINCT"))
            star = False
            args: List[Expr] = []
            token = self._peek()
            if token.type == OP and token.value == "*":
                self._next()
                star = True
            elif not (token.type == PUNCT and token.value == ")"):
                args.append(self._parse_expr())
                while self._accept_punct(","):
                    args.append(self._parse_expr())
            self._expect_punct(")")
            if self._peek().matches_keyword("OVER"):
                self._next()
                self._expect_punct("(")
                self._expect_keyword("ORDER")
                self._expect_keyword("BY")
                order = [self._parse_order_item()]
                while self._accept_punct(","):
                    order.append(self._parse_order_item())
                self._expect_punct(")")
                return WindowCall(name, tuple(order))
            if lowered in _AGGREGATE_NAMES or star or distinct:
                return AggregateCall(
                    name, tuple(args), star=star, distinct=distinct
                )
            return FuncCall(name, tuple(args))
        # qualified column a.b (or a.b() method-style call → function)
        if self._accept_punct("."):
            second = self._expect_ident()
            if self._accept_punct("("):
                # method-style call like reads.PathName(): treat as
                # Function(column) with the column as first argument
                args = []
                if not self._accept_punct(")"):
                    args.append(self._parse_expr())
                    while self._accept_punct(","):
                        args.append(self._parse_expr())
                    self._expect_punct(")")
                return FuncCall(second, (ColumnRef(name), *args))
            return ColumnRef(second, qualifier=name)
        return ColumnRef(name)


def parse_sql(text: str) -> List[object]:
    """Parse a SQL script into a list of statement AST nodes."""
    return Parser(text).parse_statements()


def parse_statement(text: str) -> object:
    """Parse exactly one statement."""
    return Parser(text).parse_single()
