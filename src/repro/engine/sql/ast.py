"""Statement-level AST nodes produced by the parser.

Scalar expression nodes live in :mod:`repro.engine.expressions`; this
module defines the statement and clause structures around them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from ..expressions import Expr

# ---------------------------------------------------------------------------
# table sources
# ---------------------------------------------------------------------------


@dataclass
class TableRef:
    """A named table in FROM, optionally aliased."""

    name: str
    alias: Optional[str] = None

    @property
    def binding_name(self) -> str:
        return self.alias or self.name


@dataclass
class TvfRef:
    """A table-valued function call used as a table source."""

    name: str
    args: Tuple[Expr, ...]
    alias: Optional[str] = None

    @property
    def binding_name(self) -> str:
        return self.alias or self.name


@dataclass
class SubqueryRef:
    """A derived table ``(SELECT ...) alias``."""

    select: "SelectStmt"
    alias: Optional[str] = None

    @property
    def binding_name(self) -> str:
        return self.alias or "subquery"


@dataclass
class OpenRowsetRef:
    """``OPENROWSET(BULK 'path', SINGLE_BLOB)`` — yields a single row with
    one column named ``BulkColumn`` containing the file's bytes."""

    path: str
    alias: Optional[str] = None

    @property
    def binding_name(self) -> str:
        return self.alias or "openrowset"


@dataclass
class JoinClause:
    """One JOIN or CROSS APPLY step chained after the first FROM source."""

    kind: str  # 'JOIN' or 'CROSS APPLY'
    source: object  # TableRef | TvfRef | SubqueryRef
    on: Optional[Expr] = None  # required for JOIN, absent for CROSS APPLY


# ---------------------------------------------------------------------------
# SELECT
# ---------------------------------------------------------------------------


@dataclass
class SelectItem:
    """One projection item; ``star`` marks ``*`` / ``alias.*``."""

    expr: Optional[Expr] = None
    alias: Optional[str] = None
    star: bool = False
    star_qualifier: Optional[str] = None


@dataclass
class SelectStmt:
    items: List[SelectItem]
    source: Optional[object] = None  # first FROM source; None => SELECT <exprs>
    joins: List[JoinClause] = field(default_factory=list)
    where: Optional[Expr] = None
    group_by: List[Expr] = field(default_factory=list)
    having: Optional[Expr] = None
    order_by: List[Tuple[Expr, bool]] = field(default_factory=list)  # (expr, desc)
    top: Optional[int] = None
    distinct: bool = False
    #: OPTION (MAXDOP n) hint; None => planner default
    maxdop: Optional[int] = None


# ---------------------------------------------------------------------------
# DML / DDL
# ---------------------------------------------------------------------------


@dataclass
class InsertStmt:
    table: str
    columns: List[str]  # empty => full column order
    values: Optional[List[List[Expr]]] = None  # VALUES rows
    select: Optional[SelectStmt] = None  # INSERT ... SELECT


@dataclass
class DeleteStmt:
    table: str
    where: Optional[Expr] = None


@dataclass
class UpdateStmt:
    table: str
    assignments: List[Tuple[str, Expr]]
    where: Optional[Expr] = None


@dataclass
class ColumnDef:
    name: str
    type_name: str
    length: Optional[int] = None  # None => kind default; -1 => MAX
    nullable: bool = True
    identity: bool = False
    rowguidcol: bool = False
    filestream: bool = False
    primary_key: bool = False  # inline PRIMARY KEY


@dataclass
class ForeignKeyDef:
    columns: List[str]
    parent_table: str
    parent_columns: List[str]


@dataclass
class CreateTableStmt:
    name: str
    columns: List[ColumnDef]
    primary_key: List[str] = field(default_factory=list)
    foreign_keys: List[ForeignKeyDef] = field(default_factory=list)
    compression: str = "NONE"
    filestream_group: Optional[str] = None
    #: access method: "heap" (default) or "column"
    storage: str = "heap"
    #: rows per sealed column-store segment; None = engine default
    segment_rows: Optional[int] = None


@dataclass
class CreateIndexStmt:
    name: str
    table: str
    columns: List[str]


@dataclass
class DropTableStmt:
    name: str


@dataclass
class TruncateStmt:
    name: str


@dataclass
class ExplainStmt:
    """``EXPLAIN [ANALYZE] <select>`` — render the physical plan instead
    of rows; with ANALYZE, execute the query first and annotate each
    operator with the actual row count it produced."""

    select: SelectStmt
    analyze: bool = False


@dataclass
class UpdateStatisticsStmt:
    """``UPDATE STATISTICS <table>`` / ``ANALYZE <table>`` — collect
    optimizer statistics (row counts, distinct counts, histograms)."""

    table: str


@dataclass
class SetStatisticsStmt:
    """``SET STATISTICS TIME|IO ON|OFF`` — toggle the session knobs that
    print per-statement elapsed-time / logical-IO summaries."""

    option: str  # 'TIME' or 'IO'
    enabled: bool


@dataclass
class SetOptionStmt:
    """``SET MAX_DOP n`` — numeric session execution options.

    ``MAX_DOP`` caps the degree of parallelism the planner may pick for
    this session (an ``OPTION (MAXDOP n)`` hint is clamped to it too);
    ``0`` restores the server default (no session cap)."""

    option: str  # 'MAX_DOP'
    value: int
