"""SQL lexer.

Tokenises the T-SQL subset the engine supports: keywords and identifiers
(case-insensitive, with ``[bracketed]`` quoting), string literals with
doubled-quote escapes, numeric literals, operators, and punctuation.
``--`` line comments and ``/* */`` block comments are skipped.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Optional

from ..errors import SqlSyntaxError

# token types
KEYWORD = "KEYWORD"
IDENT = "IDENT"
NUMBER = "NUMBER"
STRING = "STRING"
OP = "OP"
PUNCT = "PUNCT"
EOF = "EOF"

KEYWORDS = {
    "SELECT", "FROM", "WHERE", "GROUP", "BY", "HAVING", "ORDER", "TOP",
    "AS", "AND", "OR", "NOT", "NULL", "IS", "IN", "LIKE", "BETWEEN",
    "CASE", "WHEN", "THEN", "ELSE", "END", "JOIN", "INNER",
    "CROSS", "APPLY", "ON", "ASC", "DESC", "DISTINCT",
    "INSERT", "INTO", "VALUES", "DELETE", "UPDATE", "SET", "CREATE",
    "TABLE", "INDEX", "DROP", "PRIMARY", "KEY", "FOREIGN", "REFERENCES",
    "IDENTITY", "ROWGUIDCOL", "FILESTREAM", "FILESTREAM_ON", "WITH",
    "DATA_COMPRESSION", "ROW", "PAGE", "NONE", "OVER", "UNIQUE",
    "OPENROWSET", "BULK", "SINGLE_BLOB", "CLUSTERED", "EXISTS", "UNION",
    "ALL", "BEGIN", "COMMIT", "ROLLBACK", "TRANSACTION", "EXPLAIN",
    "OPTION", "MAXDOP", "TRUNCATE", "STATISTICS", "ANALYZE", "OFF",
    "STORAGE", "SEGMENT_ROWS",
}

_TWO_CHAR_OPS = {"<>", "<=", ">=", "!=", "=="}
_ONE_CHAR_OPS = set("=<>+-*/%")
_PUNCT = set("(),.;")


@dataclass(frozen=True)
class Token:
    type: str
    value: str
    line: int
    column: int
    #: character offset of the token's first character in the source
    #: text, so the parser can slice out each statement's SQL for the
    #: query-stats registry
    offset: int = 0

    def matches_keyword(self, *words: str) -> bool:
        return self.type == KEYWORD and self.value in words

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Token({self.type}, {self.value!r})"


class Lexer:
    def __init__(self, text: str):
        self.text = text
        self.pos = 0
        self.line = 1
        self.column = 1

    def _error(self, message: str) -> SqlSyntaxError:
        return SqlSyntaxError(message, self.line, self.column)

    def _advance(self, count: int = 1) -> None:
        for _ in range(count):
            if self.pos < len(self.text) and self.text[self.pos] == "\n":
                self.line += 1
                self.column = 1
            else:
                self.column += 1
            self.pos += 1

    def _peek(self, offset: int = 0) -> str:
        index = self.pos + offset
        return self.text[index] if index < len(self.text) else ""

    def tokens(self) -> List[Token]:
        out: List[Token] = []
        while True:
            token = self._next_token()
            out.append(token)
            if token.type == EOF:
                return out

    def _skip_trivia(self) -> None:
        while self.pos < len(self.text):
            ch = self._peek()
            if ch in " \t\r\n":
                self._advance()
            elif ch == "-" and self._peek(1) == "-":
                while self.pos < len(self.text) and self._peek() != "\n":
                    self._advance()
            elif ch == "/" and self._peek(1) == "*":
                self._advance(2)
                while self.pos < len(self.text) and not (
                    self._peek() == "*" and self._peek(1) == "/"
                ):
                    self._advance()
                if self.pos >= len(self.text):
                    raise self._error("unterminated block comment")
                self._advance(2)
            else:
                return

    def _next_token(self) -> Token:
        self._skip_trivia()
        line, column = self.line, self.column
        offset = self.pos
        if self.pos >= len(self.text):
            return Token(EOF, "", line, column, offset)
        ch = self._peek()

        # bracketed identifier [Read]
        if ch == "[":
            self._advance()
            start = self.pos
            while self.pos < len(self.text) and self._peek() != "]":
                self._advance()
            if self.pos >= len(self.text):
                raise self._error("unterminated bracketed identifier")
            name = self.text[start : self.pos]
            self._advance()
            return Token(IDENT, name, line, column, offset)

        # string literal
        if ch == "'":
            self._advance()
            parts: List[str] = []
            while True:
                if self.pos >= len(self.text):
                    raise self._error("unterminated string literal")
                current = self._peek()
                if current == "'":
                    if self._peek(1) == "'":
                        parts.append("'")
                        self._advance(2)
                    else:
                        self._advance()
                        break
                else:
                    parts.append(current)
                    self._advance()
            return Token(STRING, "".join(parts), line, column, offset)

        # number
        if ch.isdigit() or (ch == "." and self._peek(1).isdigit()):
            start = self.pos
            saw_dot = False
            while self.pos < len(self.text) and (
                self._peek().isdigit() or (self._peek() == "." and not saw_dot)
            ):
                if self._peek() == ".":
                    # don't swallow "1." followed by identifier (rare); fine here
                    saw_dot = True
                self._advance()
            if self._peek() in "eE" and (
                self._peek(1).isdigit()
                or (self._peek(1) in "+-" and self._peek(2).isdigit())
            ):
                self._advance()
                if self._peek() in "+-":
                    self._advance()
                while self.pos < len(self.text) and self._peek().isdigit():
                    self._advance()
            return Token(NUMBER, self.text[start : self.pos], line, column, offset)

        # identifier / keyword
        if ch.isalpha() or ch == "_" or ch == "@":
            start = self.pos
            while self.pos < len(self.text) and (
                self._peek().isalnum() or self._peek() in "_@$#"
            ):
                self._advance()
            word = self.text[start : self.pos]
            upper = word.upper()
            if upper in KEYWORDS:
                return Token(KEYWORD, upper, line, column, offset)
            return Token(IDENT, word, line, column, offset)

        # operators
        two = self.text[self.pos : self.pos + 2]
        if two in _TWO_CHAR_OPS:
            self._advance(2)
            return Token(OP, "<>" if two == "!=" else two, line, column, offset)
        if ch in _ONE_CHAR_OPS:
            self._advance()
            return Token(OP, ch, line, column, offset)
        if ch in _PUNCT:
            self._advance()
            return Token(PUNCT, ch, line, column, offset)
        raise self._error(f"unexpected character {ch!r}")


def tokenize(text: str) -> List[Token]:
    return Lexer(text).tokens()
