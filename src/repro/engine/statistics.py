"""Deprecated alias for :mod:`repro.engine.uda_library`.

This module used to hold the STDEV/MEDIAN/STRING_AGG user-defined
aggregates, which are *aggregate functions*, not table statistics. It
was renamed so the name ``statistics`` is free for the optimizer's
table/column statistics (:mod:`repro.engine.optimizer.statistics`).
Import from :mod:`repro.engine.uda_library` instead.
"""

from __future__ import annotations

import warnings

from .uda_library import (  # noqa: F401
    GeoMeanUda,
    MedianUda,
    StdevUda,
    StringAggUda,
    VarUda,
    register_statistics,
)

warnings.warn(
    "repro.engine.statistics is deprecated; the statistical/string UDAs "
    "live in repro.engine.uda_library (table statistics live in "
    "repro.engine.optimizer.statistics)",
    DeprecationWarning,
    stacklevel=2,
)

__all__ = [
    "GeoMeanUda",
    "MedianUda",
    "StdevUda",
    "StringAggUda",
    "VarUda",
    "register_statistics",
]
