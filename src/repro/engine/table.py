"""Tables: schema + heap storage + indexes + FILESTREAM handling.

A :class:`Table` owns a heap file for its rows. Tables with a primary key
additionally maintain a B+tree mapping the key to the row's rid — for
non-heap tables this acts as the *clustered index*: :meth:`ordered_scan`
and :meth:`seek` deliver rows in key order, which the planner exploits
for merge joins and ordered aggregation (the paper's Figure 10 plan).

Columns declared ``VARBINARY(MAX) FILESTREAM`` are transparent pointers
into the database's :class:`~repro.engine.filestream.FileStreamStore`:
inserting ``bytes`` stores the payload as a managed file and keeps only
the 16-byte GUID in-row; scans surface the GUID as a :class:`uuid.UUID`
so queries can call ``PathName()`` / ``DATALENGTH()`` on it.
"""

from __future__ import annotations

import uuid
from typing import Any, Callable, Dict, Iterator, List, Optional, Sequence, Tuple

from .errors import BindError, ConstraintViolation, DuplicateKeyError, StorageError
from .filestream import FileStreamStore
from .index.btree import BPlusTree
from .metrics import Counters
from .schema import COMPRESSION_NONE, Column, TableSchema
from .storage.base import Rid, create_access_method


class Table:
    """One stored table."""

    def __init__(
        self,
        schema: TableSchema,
        filestream_store: Optional[FileStreamStore] = None,
        udt_codec_lookup=None,
    ):
        self.schema = schema
        #: the access method storing this table's rows (heap or column
        #: store), selected by ``schema.storage``
        self.store = create_access_method(
            schema, udt_codec_lookup=udt_codec_lookup
        )
        self._fs_store = filestream_store
        self._fs_columns = tuple(
            i for i, c in enumerate(schema.columns) if c.sql_type.filestream
        )
        if self._fs_columns and filestream_store is None:
            raise BindError(
                f"table {schema.name!r} declares FILESTREAM columns but the "
                "database has no FileStream store"
            )
        self._identity_col = next(
            (i for i, c in enumerate(schema.columns) if c.identity), None
        )
        self._next_identity = 1
        # Primary-key index. For non-heap tables this is the clustered index.
        self._pk_index: Optional[BPlusTree] = (
            BPlusTree(unique=True) if schema.primary_key else None
        )
        self._secondary: Dict[str, Tuple[Tuple[int, ...], BPlusTree]] = {}
        #: optimizer statistics, populated by UPDATE STATISTICS / analyze()
        self._statistics = None
        #: (sealed-segment count, TableStats) cache for the zero-scan
        #: statistics harvested from columnstore segment metadata
        self._harvested_statistics = None
        #: rows inserted/deleted since statistics were last collected —
        #: SQL Server's colmodctr, driving automatic statistics refresh
        self.modification_counter = 0

    @property
    def heap(self):
        """Back-compat alias for :attr:`store`, from when the heap was
        the only access method. ``fetch``/``scan`` work on both engines."""
        return self.store

    # -- inserts ---------------------------------------------------------------------

    def insert(self, values: Sequence[Any]) -> Rid:
        """Validate and store one row (full column order).

        Pass ``None`` for an IDENTITY column to have a value assigned.
        FILESTREAM columns accept ``bytes`` (payload stored as a managed
        file) or an existing :class:`uuid.UUID` pointer.
        """
        row = list(values)
        if self._identity_col is not None and row[self._identity_col] is None:
            row[self._identity_col] = self._next_identity
            self._next_identity += 1
        created_blobs: List[uuid.UUID] = []
        for i in self._fs_columns:
            value = row[i]
            if value is None:
                continue
            if isinstance(value, uuid.UUID):
                guid = value
            elif isinstance(value, (bytes, bytearray)):
                guid = self._fs_store.create(bytes(value))
                created_blobs.append(guid)
            else:
                raise ConstraintViolation(
                    f"FILESTREAM column {self.schema.columns[i].name!r} "
                    f"takes bytes or a GUID, got {type(value).__name__}"
                )
            row[i] = guid.bytes
        try:
            row = self.schema.validate_row(row)
            key = self.schema.key_of(row) if self._pk_index is not None else None
            if self._pk_index is not None and self._pk_index.contains(key):
                raise DuplicateKeyError(
                    f"duplicate primary key {key!r} in {self.schema.name!r}"
                )
        except Exception:
            for guid in created_blobs:
                self._fs_store.delete(guid)
            raise
        if self._identity_col is not None:
            ident = row[self._identity_col]
            if isinstance(ident, int) and ident >= self._next_identity:
                self._next_identity = ident + 1
        rid = self.store.insert(row)
        if self._pk_index is not None:
            self._pk_index.insert(key, rid)
        for name, (col_idxs, tree) in self._secondary.items():
            tree.insert(tuple(row[i] for i in col_idxs), rid)
        self.modification_counter += 1
        return rid

    def insert_many(self, rows: Iterator[Sequence[Any]]) -> int:
        count = 0
        for row in rows:
            self.insert(row)
            count += 1
        return count

    def finish_bulk_load(self, force: bool = True) -> None:
        """Seal the open tail (heap: the tail page, so PAGE compression
        covers every page; column store: the tail segment, so encodings
        and zone maps cover every row).  ``force=False`` marks a
        per-statement boundary: the column store then keeps a small tail
        open as its delta store instead of sealing one-row segments."""
        self.store.seal_all(force=force)

    # -- deletes ---------------------------------------------------------------------

    def delete_where(self, predicate: Callable[[Tuple[Any, ...]], bool]) -> int:
        """Delete all rows matching ``predicate``; returns the count."""
        victims = [
            (rid, row) for rid, row in self.store.scan() if predicate(row)
        ]
        for rid, row in victims:
            self._delete_rid(rid, row)
        return len(victims)

    def update_where(
        self,
        predicate: Callable[[Tuple[Any, ...]], bool],
        updater: Callable[[Tuple[Any, ...]], Sequence[Any]],
    ) -> int:
        """Update all rows matching ``predicate`` by replacing them with
        ``updater(row)``; returns the count.

        Implemented as delete-all-then-reinsert so key changes within
        the updated set cannot self-collide. On any failure the original
        rows are restored (single-statement atomicity). Not supported on
        tables with FILESTREAM columns (the delete would drop the blob).
        """
        if self._fs_columns:
            raise BindError(
                f"UPDATE is not supported on FILESTREAM table "
                f"{self.schema.name!r}"
            )
        victims = [
            (rid, row) for rid, row in self.store.scan() if predicate(row)
        ]
        for rid, row in victims:
            self._delete_rid(rid, row)
        inserted: List[Tuple[Any, ...]] = []
        try:
            for _rid, row in victims:
                new_row = tuple(updater(row))
                self.insert(new_row)
                inserted.append(new_row)
        except Exception:
            # restore: drop the updated rows written so far, put all
            # originals back
            for new_row in inserted:
                self.delete_where(lambda r, target=new_row: r == target)
            for _rid, row in victims:
                self.insert(row)
            raise
        return len(victims)

    def _delete_rid(self, rid: Rid, row: Tuple[Any, ...]) -> None:
        self.modification_counter += 1
        self.store.delete(rid)
        if self._pk_index is not None:
            self._pk_index.delete(self.schema.key_of(row))
        for name, (col_idxs, tree) in self._secondary.items():
            tree.delete(tuple(row[i] for i in col_idxs), rid)
        for i in self._fs_columns:
            if row[i] is not None:
                guid = uuid.UUID(bytes=row[i])
                if self._fs_store.exists(guid):
                    self._fs_store.delete(guid)

    # -- reads -----------------------------------------------------------------------

    def _surface(self, row: Tuple[Any, ...]) -> Tuple[Any, ...]:
        """Convert stored GUID bytes of FILESTREAM columns to UUIDs."""
        if not self._fs_columns:
            return row
        out = list(row)
        for i in self._fs_columns:
            if out[i] is not None:
                out[i] = uuid.UUID(bytes=out[i])
        return tuple(out)

    def scan(self) -> Iterator[Tuple[Any, ...]]:
        """All rows in physical (heap) order."""
        if self._fs_columns:
            for _rid, row in self.store.scan():
                yield self._surface(row)
        else:
            for _rid, row in self.store.scan():
                yield row

    def scan_batches(self) -> Iterator[List[Tuple[Any, ...]]]:
        """All rows in physical order, one page-aligned batch per page."""
        if self._fs_columns:
            for batch in self.store.scan_batches():
                yield [self._surface(row) for row in batch]
        else:
            yield from self.store.scan_batches()

    def ordered_scan(self) -> Iterator[Tuple[Any, ...]]:
        """All rows in primary-key order (clustered-index scan)."""
        if self._pk_index is None:
            raise BindError(
                f"table {self.schema.name!r} has no primary key to order by"
            )
        fetch = self.store.fetch
        for _key, rid in self._pk_index.items():
            yield self._surface(fetch(rid))

    def seek(
        self,
        lo: Optional[Tuple[Any, ...]] = None,
        hi: Optional[Tuple[Any, ...]] = None,
    ) -> Iterator[Tuple[Any, ...]]:
        """Clustered-index range seek; prefix bounds allowed."""
        if self._pk_index is None:
            raise BindError(f"table {self.schema.name!r} has no primary key")
        fetch = self.store.fetch
        for _key, rid in self._pk_index.range(lo, hi):
            yield self._surface(fetch(rid))

    def get(self, key: Tuple[Any, ...]) -> Optional[Tuple[Any, ...]]:
        """Point lookup by primary key; None when absent."""
        if self._pk_index is None:
            raise BindError(f"table {self.schema.name!r} has no primary key")
        try:
            rid = self._pk_index.get(key)
        except KeyError:
            return None
        return self._surface(self.store.fetch(rid))

    # -- secondary indexes --------------------------------------------------------------

    def create_index(self, name: str, columns: Sequence[str]) -> None:
        """Build a non-unique secondary index over ``columns``."""
        if name.lower() in self._secondary:
            raise BindError(f"index {name!r} already exists")
        col_idxs = tuple(self.schema.column_index(c) for c in columns)
        tree = BPlusTree(unique=False)
        for rid, row in self.store.scan():
            tree.insert(tuple(row[i] for i in col_idxs), rid)
        self._secondary[name.lower()] = (col_idxs, tree)

    def index_seek(
        self,
        name: str,
        lo: Optional[Tuple[Any, ...]] = None,
        hi: Optional[Tuple[Any, ...]] = None,
    ) -> Iterator[Tuple[Any, ...]]:
        try:
            _col_idxs, tree = self._secondary[name.lower()]
        except KeyError:
            raise BindError(f"unknown index {name!r}") from None
        fetch = self.store.fetch
        for _key, rid in tree.range(lo, hi):
            yield self._surface(fetch(rid))

    def secondary_indexes(self) -> Dict[str, Tuple[int, ...]]:
        """Name → indexed column positions, for the planner."""
        return {
            name: col_idxs
            for name, (col_idxs, _tree) in self._secondary.items()
        }

    # -- statistics ------------------------------------------------------------------

    @property
    def statistics(self):
        """Explicitly collected statistics; for column tables without
        any, statistics harvested zero-scan from the per-segment zone
        maps and distinct hints (re-harvested whenever a new segment
        seals)."""
        if self._statistics is not None:
            return self._statistics
        segments = getattr(self.store, "segments", None)
        if not segments:
            return None
        cached = self._harvested_statistics
        if cached is not None and cached[0] == len(segments):
            return cached[1]
        from .optimizer.statistics import harvest_segment_statistics

        harvested = harvest_segment_statistics(self)
        self._harvested_statistics = (len(segments), harvested)
        return harvested

    @statistics.setter
    def statistics(self, value):
        self._statistics = value

    def analyze(self, buckets: Optional[int] = None,
                mcv_size: Optional[int] = None):
        """Collect fresh optimizer statistics from a full scan (the
        engine behind ``UPDATE STATISTICS <table>``)."""
        from .optimizer.statistics import (
            DEFAULT_BUCKETS,
            DEFAULT_MCV,
            collect_table_statistics,
        )

        previous = self.statistics
        self.statistics = collect_table_statistics(
            self,
            buckets=buckets if buckets is not None else DEFAULT_BUCKETS,
            mcv_size=mcv_size if mcv_size is not None else DEFAULT_MCV,
            version=(previous.version + 1) if previous is not None else 1,
        )
        self.modification_counter = 0
        return self.statistics

    def statistics_stale(self) -> bool:
        """SQL Server's auto-update-statistics trigger: stale once the
        modification counter passes 500 + 20% of the statistics' row
        count. Only tables with explicitly collected statistics qualify
        (the zero-scan harvested kind re-derives itself per segment
        seal and has nothing to refresh)."""
        stats = self._statistics
        if stats is None:
            return False
        return self.modification_counter >= 500 + 0.2 * stats.row_count

    def has_index_on(self, columns: Sequence[str]) -> bool:
        """True when the PK or a secondary index leads with ``columns``."""
        want = tuple(self.schema.column_index(c) for c in columns)
        if self._pk_index is not None:
            if self.schema.key_indexes[: len(want)] == want:
                return True
        for _name, (col_idxs, _tree) in self._secondary.items():
            if col_idxs[: len(want)] == want:
                return True
        return False

    # -- accounting ---------------------------------------------------------------------

    @property
    def row_count(self) -> int:
        return self.store.row_count

    def stored_bytes(self) -> int:
        """In-row storage bytes (pages), excluding FILESTREAM payloads."""
        return self.store.stored_bytes()

    def filestream_bytes(self) -> int:
        """Bytes of FILESTREAM payloads owned by this table's rows."""
        if not self._fs_columns:
            return 0
        total = 0
        for _rid, row in self.store.scan():
            for i in self._fs_columns:
                if row[i] is not None:
                    total += self._fs_store.data_length(uuid.UUID(bytes=row[i]))
        return total

    def uncompressed_bytes(self) -> int:
        return self.store.uncompressed_bytes()

    def io_report(self) -> Counters:
        """Combined IO counters for this table: the access method's
        counters in its own namespace (heap: ``pages_read``...; column
        store: ``segments_read``...; see ``storage.base`` for the
        no-collision contract that keeps mixed-engine databases summable
        in ``sys_dm_io_stats``), plus B+tree counters (clustered +
        secondary, summed) under an ``index_`` prefix. Used by SET
        STATISTICS IO and the DMVs."""
        out = self.store.io_report()
        if self._pk_index is not None:
            out.merge(self._pk_index.io, prefix="index_")
        for _name, (_cols, tree) in self._secondary.items():
            out.merge(tree.io, prefix="index_")
        return out
