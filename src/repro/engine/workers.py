"""The worker-pool runtime: real multi-core parallel execution.

Earlier versions *simulated* DOP: the exchange operator timed partition
tasks on one core and reported an LPT-scheduled wall clock. This module
replaces the simulation with real OS processes. One :class:`WorkerPool`
is owned per :class:`~repro.engine.database.Database`, spawned lazily on
the first offloadable parallel plan and reused across queries — the
analogue of SQL Server's scheduler-bound worker threads, surfaced
through ``sys_dm_os_workers``.

Transport is explicit pickling: the coordinator serialises every task
payload itself (so a payload that cannot pickle fails *synchronously*
and the plan falls back to serial, instead of wedging a queue feeder
thread), and workers serialise results the same way. The byte counts
are recorded per task, which is where the cost model's measured
transport constants come from.

Everything a worker touches must be picklable and importable from a
child process: raw page records (bytes), encoded column segments,
:class:`~repro.engine.executor.aggregates.AggregateSpec` objects whose
argument accessors have been rebuilt as ``operator.itemgetter`` (the
planner's compiled closures never ship). Partial aggregation states are
returned whole and merged on the coordinator — the property that lets
UDAs parallelise "just like built-in aggregates".

Set ``REPRO_NO_PARALLEL_WORKERS=1`` to disable the pool (every exchange
then runs its serial, simulated path — what constrained CI sandboxes
use so a broken ``multiprocessing`` never hangs a test run).
"""

from __future__ import annotations

import multiprocessing
import os
import pickle
import time
from collections import OrderedDict
from dataclasses import dataclass, field
from operator import itemgetter
from typing import Any, Dict, List, Optional, Sequence, Tuple

from . import tracing
from .errors import EngineError

#: environment kill switch: force every exchange serial
DISABLE_ENV = "REPRO_NO_PARALLEL_WORKERS"
#: per-run collection timeout (seconds); generous, never infinite
TIMEOUT_ENV = "REPRO_WORKER_TIMEOUT"
_DEFAULT_TIMEOUT = 120.0

_PICKLE_PROTOCOL = pickle.HIGHEST_PROTOCOL


class WorkerPoolError(EngineError):
    """The pool cannot run tasks (spawn failure, timeout, task crash).

    Callers catch this and fall back to serial execution — a parallel
    plan must never surface a pool failure as a query error."""


def lpt_assign(weights: Sequence[float], workers: int) -> List[List[int]]:
    """Longest-processing-time-first task assignment.

    Returns one list of task indexes per worker. This is the same greedy
    schedule :func:`~repro.engine.executor.parallel.lpt_makespan` prices,
    now used as the *actual* task-to-worker mapping rather than a
    wall-clock model.
    """
    if workers <= 0:
        raise WorkerPoolError("workers must be positive")
    loads = [0.0] * workers
    assignment: List[List[int]] = [[] for _ in range(workers)]
    order = sorted(range(len(weights)), key=lambda i: weights[i], reverse=True)
    for index in order:
        target = loads.index(min(loads))
        loads[target] += weights[index]
        assignment[target].append(index)
    return assignment


# ---------------------------------------------------------------------------
# worker-side task execution
# ---------------------------------------------------------------------------
#
# Module-level functions only: tasks are dispatched by name so the child
# process resolves them by importing this module, never by unpickling a
# code object.


# Worker-local decoded-slice cache — the worker-side analogue of a warm
# buffer pool. The coordinator ships raw page/segment bytes every query;
# a worker that already decoded an identical slice (same store identity,
# same data version, same partition coordinates, same projection) reuses
# the decoded rows instead of paying the decode again, exactly as the
# coordinator's serial scan reuses its per-page row caches. Any row
# mutation bumps the store's data version, so stale entries can never be
# served; column slices with predicates decode predicate-dependently and
# are not cached.
_SLICE_CACHE: "OrderedDict[tuple, Tuple[list, Dict[str, int]]]" = OrderedDict()
_SLICE_CACHE_LIMIT = 32

#: module-level mutable state that is *intentionally* per-process: the
#: fork-safety analyzer (verify/parallel_safety.py) rejects any other
#: module-level container mutated from function scope, so divergence
#: across the fork boundary is always a declared decision, never an
#: accident.
WORKER_LOCAL_STATE = frozenset({"_SLICE_CACHE"})


def _slice_cache_key(kind: str, payload: Dict[str, Any]) -> Optional[tuple]:
    cookie = payload.get("cache_key")
    if cookie is None:
        return None
    if kind == "column" and payload.get("predicates"):
        return None
    positions = payload.get("out_positions")
    if positions is not None:
        positions = tuple(positions)
    return (kind, cookie, positions)


def _slice_cache_put(key: tuple, rows: list, io: Dict[str, int]) -> None:
    _SLICE_CACHE[key] = (rows, io)
    _SLICE_CACHE.move_to_end(key)
    while len(_SLICE_CACHE) > _SLICE_CACHE_LIMIT:
        _SLICE_CACHE.popitem(last=False)


def _decode_heap_source(source: Dict[str, Any]) -> List[Tuple[Any, ...]]:
    """Materialise rows from shipped heap pages (records are raw
    ROW-format bytes; the worker rebuilds the serializer from the shipped
    schema and pays the decode — the coordinator never touches them)."""
    from .storage.serializer import RowSerializer

    serializer = RowSerializer(
        source["schema"], row_compression=source["row_compression"]
    )
    deserialize = serializer.deserialize
    join = serializer.join_compressed
    rows: List[Tuple[Any, ...]] = []
    for records, tombstones, compressor, ncols in source["pages"]:
        if compressor is None:
            for slot, record in enumerate(records):
                if not tombstones[slot]:
                    rows.append(deserialize(record))
        else:
            for slot, record in enumerate(records):
                if tombstones[slot]:
                    continue
                nulls, fields = compressor.decode_record(record, ncols)
                rows.append(deserialize(join(nulls, fields)))
    positions = source.get("out_positions")
    if positions is not None:
        rows = [tuple(row[i] for i in positions) for row in rows]
    return rows


def _decode_column_source(
    source: Dict[str, Any],
) -> Tuple[List[Tuple[Any, ...]], Dict[str, int]]:
    """Materialise rows from shipped column segments: zone-map pruning,
    encoded selection, and late materialization all run worker-side, on
    this worker's disjoint segment range."""
    from .storage.columnstore import RowSegment

    predicates = source.get("predicates") or []
    out_positions = source["out_positions"]
    rows: List[Tuple[Any, ...]] = []
    io = {"segments_read": 0, "segments_skipped": 0}
    for columns, nrows, deleted in source["segments"]:
        segment = RowSegment.__new__(RowSegment)
        segment.columns = tuple(columns)
        segment.rows = nrows
        segment.deleted = set(deleted)
        segment._cache = {}
        if not all(
            segment.columns[p.col_index].zone_admits(p) for p in predicates
        ):
            io["segments_skipped"] += 1
            continue
        io["segments_read"] += 1
        selection = segment.selection(predicates)
        if selection is not None and not selection:
            continue
        if not out_positions:
            count = segment.rows if selection is None else len(selection)
            rows.extend([()] * count)
            continue
        vectors = [segment.gather(i, selection) for i in out_positions]
        rows.extend(zip(*vectors))
    tail = source.get("tail")
    if tail:
        io["segments_read"] += 1
        if predicates:
            matchers = [(p.col_index, p.matcher()) for p in predicates]
            tail = [
                row
                for row in tail
                if all(match(row[i]) for i, match in matchers)
            ]
        for row in tail:
            rows.append(tuple(row[i] for i in out_positions))
    return rows, io


def _source_rows(
    source: Tuple[str, Dict[str, Any]],
) -> Tuple[List[Tuple[Any, ...]], Dict[str, int]]:
    kind, payload = source
    if kind == "rows":
        return payload["rows"], {}
    key = _slice_cache_key(kind, payload)
    if key is not None:
        hit = _SLICE_CACHE.get(key)
        if hit is not None:
            _SLICE_CACHE.move_to_end(key)
            rows, io = hit
            # warm reads replay the same IO accounting a warm serial
            # scan reports (pages_read counts logical reads, not misses)
            return rows, dict(io)
    if kind == "heap":
        rows, io = _decode_heap_source(payload), {}
    elif kind == "column":
        rows, io = _decode_column_source(payload)
    else:
        raise WorkerPoolError(f"unknown task source {kind!r}")
    if key is not None:
        _slice_cache_put(key, rows, io)
        return rows, dict(io)
    return rows, io


def run_partial_aggregate(payload: Dict[str, Any]) -> Dict[str, Any]:
    """One exchange partition: scan the shipped slice, aggregate into
    per-group partial states, return the states for coordinator merge.

    The groups dict preserves first-occurrence order within this
    partition; the coordinator merges partitions in range order, which
    reproduces the serial hash aggregate's group order exactly."""
    decode_started = time.perf_counter()
    rows, io = _source_rows(payload["source"])
    agg_started = time.perf_counter()
    specs = payload["specs"]
    group_indexes = payload["group_indexes"]
    key_of = itemgetter(*group_indexes)
    # bucket rows by key first (one dict probe + append per row), then
    # bulk-accumulate each bucket column-wise: the per-row interpreter
    # loop of state.add() collapses into C-level map/sum/min/max calls.
    # Bucket order is first-occurrence order; value order within a
    # bucket is input order, so float accumulation matches serial
    # execution bit for bit.
    buckets: Dict[Any, List[Any]] = {}
    for row in rows:
        key = key_of(row)
        bucket = buckets.get(key)
        if bucket is None:
            buckets[key] = [row]
        else:
            bucket.append(row)
    groups: Dict[Any, List[Any]] = {}
    for key, bucket in buckets.items():
        states = []
        for spec in specs:
            state = spec.new_state()
            if spec.uda_class is not None:
                for row in bucket:
                    state.add(row)
            elif spec.star:
                state.add_values(bucket)
            else:
                state.add_values(list(map(spec.arg_fns[0], bucket)))
            states.append(state)
        groups[key] = states
    done = time.perf_counter()
    return {
        "groups": groups,
        "rows": len(rows),
        "io": io,
        "phases": [
            ("decode slice", "DECODE", decode_started, agg_started),
            ("partial aggregate", None, agg_started, done),
        ],
    }


def run_uda_group(payload: Dict[str, Any]) -> Dict[str, Any]:
    """One ordered-UDA group task: run the aggregate over the whole
    group's rows (groups never split across workers — the consensus
    plan's per-chromosome parallelism)."""
    started = time.perf_counter()
    spec = payload["spec"]
    rows = payload["rows"]
    state = spec.new_state()
    for row in rows:
        state.add(row)
    done = time.perf_counter()
    return {
        "result": state.result(),
        "rows": len(rows),
        "io": {},
        "phases": [("uda group", None, started, done)],
    }


_TASK_KINDS = {
    "partial_agg": run_partial_aggregate,
    "uda_group": run_uda_group,
}


def _worker_main(worker_id: int, task_queue, result_queue) -> None:
    """Worker process loop: unpickle task, dispatch by kind, return a
    pickled result. Exceptions are reported, never fatal to the loop.

    When the coordinator is tracing (``want_spans``), the worker
    measures its own phases — queue wait, task unpickle, the handler's
    internal phases (decode/aggregate), result pickle — and ships them
    back as raw ``(name, wait_type, start, end)`` tuples *outside* the
    result blob (the result-ship span cannot be inside the bytes it
    times). ``perf_counter`` shares one monotonic clock across forked
    processes, so the coordinator grafts these endpoints unadjusted."""
    while True:
        item = task_queue.get()
        if item is None:
            break
        task_id, blob, enqueued, want_spans = item
        started = time.perf_counter()
        spans: List[Tuple[str, Optional[str], float, float]] = []
        try:
            kind, payload = pickle.loads(blob)
            decoded = time.perf_counter()
            result = _TASK_KINDS[kind](payload)
            phases = result.pop("phases", [])
            ran = time.perf_counter()
            out = pickle.dumps(result, _PICKLE_PROTOCOL)
            shipped = time.perf_counter()
            elapsed = shipped - started
            if want_spans:
                spans.append(("queue wait", "WORKER_QUEUE", enqueued, started))
                spans.append(("unpickle task", "TRANSPORT", started, decoded))
                spans.extend(phases)
                spans.append(("pickle result", "TRANSPORT", ran, shipped))
            result_queue.put(
                (task_id, worker_id, True, out, elapsed, result["rows"], spans)
            )
        except Exception as exc:  # noqa: BLE001 - reported to coordinator
            elapsed = time.perf_counter() - started
            result_queue.put(
                (
                    task_id,
                    worker_id,
                    False,
                    f"{type(exc).__name__}: {exc}",
                    elapsed,
                    0,
                    spans,
                )
            )


# ---------------------------------------------------------------------------
# the pool
# ---------------------------------------------------------------------------


@dataclass
class TaskResult:
    """One task's result as the coordinator sees it."""

    value: Any
    worker_id: int
    elapsed: float
    rows: int
    bytes_sent: int
    bytes_received: int
    spans: List[Tuple[str, Optional[str], float, float]] = field(
        default_factory=list
    )


@dataclass
class _WorkerState:
    """Coordinator-side per-worker bookkeeping (sys_dm_os_workers)."""

    worker_id: int
    pid: int
    tasks_completed: int = 0
    rows_processed: int = 0
    busy_seconds: float = 0.0
    last_task_ms: float = 0.0


@dataclass
class RunStats:
    """Aggregates for one :meth:`WorkerPool.run` call."""

    wall: float = 0.0
    bytes_sent: int = 0
    bytes_received: int = 0
    task_times: List[float] = field(default_factory=list)


class WorkerPool:
    """A lazily spawned, reusable pool of worker processes.

    ``fork`` start method when the platform offers it (workers inherit
    the interpreter state, so test-defined UDA classes resolve), else
    ``spawn``. Workers are daemons: an exiting coordinator never leaks
    processes even when :meth:`close` is skipped.
    """

    def __init__(self, max_workers: int = 4):
        self.max_workers = max(int(max_workers), 1)
        self._ctx = None
        self._workers: List[Any] = []
        self._task_queues: List[Any] = []
        self._result_queue = None
        self._states: List[_WorkerState] = []
        self._broken: Optional[str] = None
        self.spawn_seconds = 0.0
        self.runs = 0
        self.last_run: Optional[RunStats] = None

    # -- lifecycle ---------------------------------------------------------------

    @property
    def disabled_reason(self) -> Optional[str]:
        if os.environ.get(DISABLE_ENV):
            return f"{DISABLE_ENV} is set"
        return self._broken

    def available(self) -> bool:
        return self.disabled_reason is None

    @property
    def size(self) -> int:
        return len(self._workers)

    def _context(self):
        if self._ctx is None:
            try:
                self._ctx = multiprocessing.get_context("fork")
            except ValueError:
                self._ctx = multiprocessing.get_context("spawn")
        return self._ctx

    def ensure(self, workers: int) -> bool:
        """Spawn up to ``workers`` processes (capped at ``max_workers``);
        returns False — and records the reason — when spawning fails."""
        if not self.available():
            return False
        wanted = min(max(workers, 1), self.max_workers)
        if len(self._workers) >= wanted:
            return True
        started = time.perf_counter()
        try:
            ctx = self._context()
            if self._result_queue is None:
                self._result_queue = ctx.Queue()
            while len(self._workers) < wanted:
                worker_id = len(self._workers)
                task_queue = ctx.Queue()
                process = ctx.Process(
                    target=_worker_main,
                    args=(worker_id, task_queue, self._result_queue),
                    daemon=True,
                    name=f"repro-worker-{worker_id}",
                )
                process.start()
                self._workers.append(process)
                self._task_queues.append(task_queue)
                self._states.append(_WorkerState(worker_id, process.pid or 0))
        except Exception as exc:  # noqa: BLE001 - permanent serial fallback
            self._broken = f"worker spawn failed: {exc}"
            self._terminate()
            return False
        self.spawn_seconds += time.perf_counter() - started
        return True

    def close(self) -> None:
        """Shut the pool down (Database.close). Idempotent."""
        for queue in self._task_queues:
            try:
                queue.put(None)
            except Exception:  # noqa: BLE001
                pass
        for process in self._workers:
            process.join(timeout=2.0)
            if process.is_alive():
                process.terminate()
        self._workers = []
        self._task_queues = []
        self._result_queue = None
        self._states = []

    def _terminate(self) -> None:
        for process in self._workers:
            if process.is_alive():
                process.terminate()
        self._workers = []
        self._task_queues = []
        self._result_queue = None
        self._states = []

    # -- execution ---------------------------------------------------------------

    def run(
        self,
        tasks: Sequence[Tuple[str, Dict[str, Any]]],
        weights: Optional[Sequence[float]] = None,
        workers: Optional[int] = None,
    ) -> List[TaskResult]:
        """Run ``tasks`` (``(kind, payload)`` pairs) across the pool and
        return results in task order.

        Tasks are LPT-assigned to workers by ``weights`` (estimated
        rows). Raises :class:`WorkerPoolError` on any failure — spawn,
        pickling, task crash, or timeout — after marking the pool
        broken where the failure is permanent; the caller falls back to
        serial execution.
        """
        if not tasks:
            return []
        wanted = workers or min(len(tasks), self.max_workers)
        if not self.ensure(wanted):
            raise WorkerPoolError(
                self.disabled_reason or "worker pool unavailable"
            )
        active = len(self._workers)
        try:
            blobs = [
                pickle.dumps(task, _PICKLE_PROTOCOL) for task in tasks
            ]
        except Exception as exc:  # noqa: BLE001 - plan not shippable
            raise WorkerPoolError(f"task payload not picklable: {exc}")
        task_weights = (
            list(weights)
            if weights is not None
            else [float(len(blob)) for blob in blobs]
        )
        stats = RunStats(bytes_sent=sum(len(b) for b in blobs))
        trace = tracing.current_trace()
        want_spans = trace is not None
        started = time.perf_counter()
        assignment = lpt_assign(task_weights, active)
        for worker_id, task_ids in enumerate(assignment):
            for task_id in task_ids:
                self._task_queues[worker_id].put(
                    (task_id, blobs[task_id], time.perf_counter(), want_spans)
                )
        timeout = float(os.environ.get(TIMEOUT_ENV, _DEFAULT_TIMEOUT))
        deadline = started + timeout
        results: List[Optional[TaskResult]] = [None] * len(tasks)
        for _ in range(len(tasks)):
            remaining = deadline - time.perf_counter()
            if remaining <= 0:
                self._broken = f"worker timeout after {timeout:.0f}s"
                self._terminate()
                raise WorkerPoolError(self._broken)
            try:
                task_id, worker_id, ok, blob, elapsed, rows, spans = (
                    self._result_queue.get(timeout=remaining)
                )
            except Exception:  # noqa: BLE001 - queue.Empty or pipe error
                self._broken = f"worker timeout after {timeout:.0f}s"
                self._terminate()
                raise WorkerPoolError(self._broken)
            if not ok:
                # a task error is the plan's fault, not the pool's:
                # stay alive for the next query, fail this one to serial
                # (after draining in-flight siblings so a later run's
                # result queue starts clean)
                done = sum(1 for r in results if r is not None) + 1
                self._drain(len(tasks) - done)
                raise WorkerPoolError(f"worker task failed: {blob}")
            value = pickle.loads(blob)
            results[task_id] = TaskResult(
                value=value,
                worker_id=worker_id,
                elapsed=elapsed,
                rows=rows,
                bytes_sent=len(blobs[task_id]),
                bytes_received=len(blob),
                spans=spans,
            )
            state = self._states[worker_id]
            if trace is not None and spans:
                tracing.graft_worker_spans(
                    trace,
                    f"task {task_id} (worker {worker_id})",
                    worker_id,
                    state.pid,
                    spans,
                )
            state.tasks_completed += 1
            state.rows_processed += rows
            state.busy_seconds += elapsed
            state.last_task_ms = elapsed * 1000.0
            stats.bytes_received += len(blob)
            stats.task_times.append(elapsed)
        stats.wall = time.perf_counter() - started
        self.runs += 1
        self.last_run = stats
        return [result for result in results if result is not None]

    def _drain(self, expected: int) -> None:
        """Consume ``expected`` in-flight results after a task failure so
        they cannot bleed into the next run. Gives up quietly: a worker
        stuck past the drain window is caught by the next run's timeout."""
        deadline = time.perf_counter() + 5.0
        for _ in range(max(expected, 0)):
            remaining = deadline - time.perf_counter()
            if remaining <= 0:
                break
            try:
                self._result_queue.get(timeout=remaining)
            except Exception:  # noqa: BLE001
                break

    # -- observability -----------------------------------------------------------

    def stats_rows(self) -> List[Tuple[Any, ...]]:
        """Rows for the ``sys_dm_os_workers`` DMV."""
        rows = []
        for state in self._states:
            process = self._workers[state.worker_id]
            rows.append(
                (
                    state.worker_id,
                    state.pid,
                    "running" if process.is_alive() else "dead",
                    state.tasks_completed,
                    state.rows_processed,
                    round(state.busy_seconds * 1000.0, 3),
                    round(state.last_task_ms, 3),
                )
            )
        return rows
