"""Statistical and string user-defined aggregates (the UDA library).

(Formerly ``repro.engine.statistics``; renamed because these are
aggregate *functions* — the optimizer's table statistics now own that
name under :mod:`repro.engine.optimizer.statistics`.)

Section 2.3.4: "CLR UDAs give users the ability to write their own
aggregates ... Some common cases include aggregates for string
processing, and statistical or mathematical computations." These are
those common cases, written against the same UDA contract the genomics
aggregates use — and, like built-ins, all of them are *parallel-safe*:
their partial states merge, so the exchange operator can split them
across partitions.

- ``STDEV`` / ``VAR`` — sample standard deviation / variance via
  Welford's online algorithm (numerically stable, mergeable);
- ``MEDIAN`` — exact median (buffers values; documented O(n) state);
- ``STRING_AGG`` — ordered-input string concatenation;
- ``GEOMEAN`` — geometric mean (log-domain accumulation), the natural
  aggregate for the per-base error probabilities of Section 6.1.

``register_statistics(db)`` installs all of them.
"""

from __future__ import annotations

import math
from typing import Any, List, Optional

from .udf import UserDefinedAggregate


class _WelfordState:
    """Mergeable running mean/M2 (Chan et al. parallel variant)."""

    __slots__ = ("count", "mean", "m2")

    def __init__(self):
        self.count = 0
        self.mean = 0.0
        self.m2 = 0.0

    def add(self, value: float) -> None:
        self.count += 1
        delta = value - self.mean
        self.mean += delta / self.count
        self.m2 += delta * (value - self.mean)

    def merge(self, other: "_WelfordState") -> None:
        if other.count == 0:
            return
        if self.count == 0:
            self.count, self.mean, self.m2 = other.count, other.mean, other.m2
            return
        delta = other.mean - self.mean
        total = self.count + other.count
        self.m2 += other.m2 + delta * delta * self.count * other.count / total
        self.mean += delta * other.count / total
        self.count = total

    def variance(self) -> Optional[float]:
        if self.count < 2:
            return None
        return self.m2 / (self.count - 1)


class VarUda(UserDefinedAggregate):
    """Sample variance (T-SQL ``VAR``); NULL for fewer than 2 values."""

    name = "VAR"
    arity = 1
    parallel_safe = True
    permission_set = "SAFE"

    def init(self) -> None:
        self._state = _WelfordState()

    def accumulate(self, value: Any) -> None:
        if value is not None:
            self._state.add(float(value))

    def merge(self, other: "VarUda") -> None:
        self._state.merge(other._state)

    def terminate(self) -> Optional[float]:
        return self._state.variance()


class StdevUda(VarUda):
    """Sample standard deviation (T-SQL ``STDEV``)."""

    name = "STDEV"

    def terminate(self) -> Optional[float]:
        variance = self._state.variance()
        return math.sqrt(variance) if variance is not None else None


class MedianUda(UserDefinedAggregate):
    """Exact median. Buffers all values — O(n) aggregate state, the
    honest cost of an exact holistic aggregate."""

    name = "MEDIAN"
    arity = 1
    parallel_safe = True
    permission_set = "SAFE"

    def init(self) -> None:
        self._values: List[float] = []

    def accumulate(self, value: Any) -> None:
        if value is not None:
            self._values.append(float(value))

    def merge(self, other: "MedianUda") -> None:
        self._values.extend(other._values)

    def terminate(self) -> Optional[float]:
        if not self._values:
            return None
        self._values.sort()
        n = len(self._values)
        middle = n // 2
        if n % 2:
            return self._values[middle]
        return (self._values[middle - 1] + self._values[middle]) / 2.0


class StringAggUda(UserDefinedAggregate):
    """``STRING_AGG(value)`` with a comma separator, in arrival order.

    Declared order-sensitive: merging partial states would interleave
    partitions arbitrarily, so the planner keeps it serial/ordered —
    the same contract knob ``AssembleConsensus`` uses.
    """

    name = "STRING_AGG"
    arity = 1
    parallel_safe = False
    requires_ordered_input = True
    permission_set = "SAFE"

    separator = ","

    def init(self) -> None:
        self._parts: List[str] = []

    def accumulate(self, value: Any) -> None:
        if value is not None:
            self._parts.append(str(value))

    def merge(self, other: "StringAggUda") -> None:
        self._parts.extend(other._parts)

    def terminate(self) -> Optional[str]:
        return self.separator.join(self._parts) if self._parts else None


class GeoMeanUda(UserDefinedAggregate):
    """Geometric mean over positive values (log-domain sum)."""

    name = "GEOMEAN"
    arity = 1
    parallel_safe = True
    permission_set = "SAFE"

    def init(self) -> None:
        self._log_sum = 0.0
        self._count = 0

    def accumulate(self, value: Any) -> None:
        if value is None:
            return
        number = float(value)
        if number <= 0:
            raise ValueError("GEOMEAN requires positive values")
        self._log_sum += math.log(number)
        self._count += 1

    def merge(self, other: "GeoMeanUda") -> None:
        self._log_sum += other._log_sum
        self._count += other._count

    def terminate(self) -> Optional[float]:
        if self._count == 0:
            return None
        return math.exp(self._log_sum / self._count)


def register_statistics(database) -> None:
    """Install the statistical/string UDAs on a database."""
    for uda in (VarUda, StdevUda, MedianUda, StringAggUda, GeoMeanUda):
        database.register_uda(uda)
