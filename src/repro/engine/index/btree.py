"""In-memory B+tree used for clustered and secondary indexes.

Keys are tuples of SQL values compared lexicographically (``None`` sorts
first, as SQL Server sorts NULLs). Leaves are linked for ordered range
scans — the property the planner exploits to drive merge joins and the
sliding-window consensus aggregate without sorting.

The tree supports unique keys (primary-key enforcement) and non-unique
keys (secondary indexes), where each key maps to a list of payloads.
"""

from __future__ import annotations

import bisect
from typing import Any, Iterator, List, Optional, Tuple

from ..errors import DuplicateKeyError, StorageError
from ..metrics import Counters

#: maximum keys per node before a split
ORDER = 64

_NONE_SENTINEL = (0,)
_VALUE_WRAP = (1,)


def _orderable(key: Tuple[Any, ...]) -> Tuple[Any, ...]:
    """Make a key tuple totally orderable despite NULLs and mixed types.

    Each component becomes ``(0,)`` for NULL or ``(1, value)`` otherwise,
    so NULL < any value and comparisons never hit ``None < int``.
    """
    return tuple(
        _NONE_SENTINEL if v is None else (1, v) for v in key
    )


class _Node:
    __slots__ = ("is_leaf", "keys", "children", "values", "next_leaf")

    def __init__(self, is_leaf: bool):
        self.is_leaf = is_leaf
        self.keys: List[Tuple[Any, ...]] = []  # orderable forms
        self.children: List["_Node"] = []      # internal nodes only
        self.values: List[Any] = []            # leaves only
        self.next_leaf: Optional["_Node"] = None


class BPlusTree:
    """A B+tree mapping key tuples to payloads.

    Parameters
    ----------
    unique:
        Reject duplicate keys (raises :class:`DuplicateKeyError`).
        Non-unique trees store a list of payloads per key.
    """

    def __init__(self, unique: bool = True, order: int = ORDER):
        if order < 4:
            raise StorageError("btree order must be >= 4")
        self._order = order
        self.unique = unique
        self._root = _Node(is_leaf=True)
        self._first_leaf = self._root
        self._count = 0  # number of (key, payload) pairs
        #: always-on IO counters: seeks, node_visits, inserts
        self.io = Counters()

    # -- public API ---------------------------------------------------------------

    def __len__(self) -> int:
        return self._count

    def insert(self, key: Tuple[Any, ...], payload: Any) -> None:
        okey = _orderable(key)
        self.io.incr("inserts")
        split = self._insert(self._root, okey, key, payload)
        if split is not None:
            sep, right = split
            new_root = _Node(is_leaf=False)
            new_root.keys = [sep]
            new_root.children = [self._root, right]
            self._root = new_root

    def get(self, key: Tuple[Any, ...]) -> Any:
        """Payload for ``key`` (the payload list when non-unique);
        raises ``KeyError`` when absent."""
        okey = _orderable(key)
        node = self._leaf_for(okey)
        i = bisect.bisect_left(node.keys, okey)
        if i < len(node.keys) and node.keys[i] == okey:
            return node.values[i][1]
        raise KeyError(key)

    def contains(self, key: Tuple[Any, ...]) -> bool:
        try:
            self.get(key)
            return True
        except KeyError:
            return False

    def delete(self, key: Tuple[Any, ...], payload: Any = None) -> bool:
        """Remove ``key`` (or one matching payload from a non-unique
        key's list). Returns True when something was removed. The tree is
        not rebalanced — deletes are rare in this workload and lookups
        stay correct."""
        okey = _orderable(key)
        node = self._leaf_for(okey)
        i = bisect.bisect_left(node.keys, okey)
        if i >= len(node.keys) or node.keys[i] != okey:
            return False
        if self.unique:
            del node.keys[i]
            del node.values[i]
            self._count -= 1
            return True
        payloads = node.values[i][1]
        if payload is None:
            removed = len(payloads)
            del node.keys[i]
            del node.values[i]
            self._count -= removed
            return True
        try:
            payloads.remove(payload)
        except ValueError:
            return False
        self._count -= 1
        if not payloads:
            del node.keys[i]
            del node.values[i]
        return True

    def items(self) -> Iterator[Tuple[Tuple[Any, ...], Any]]:
        """All ``(key, payload)`` pairs in key order. Non-unique trees
        yield each payload separately."""
        leaf = self._first_leaf
        while leaf is not None:
            for (key, stored) in leaf.values:
                if self.unique:
                    yield key, stored
                else:
                    for payload in stored:
                        yield key, payload
            leaf = leaf.next_leaf

    def range(
        self,
        lo: Optional[Tuple[Any, ...]] = None,
        hi: Optional[Tuple[Any, ...]] = None,
        lo_inclusive: bool = True,
        hi_inclusive: bool = True,
    ) -> Iterator[Tuple[Tuple[Any, ...], Any]]:
        """Ordered scan of keys in ``[lo, hi]`` (open-ended when None).

        Bounds may be shorter than the full key — a prefix bound matches
        every key extending it (as a composite-index seek would).
        """
        olo = _orderable(lo) if lo is not None else None
        if olo is not None:
            leaf = self._leaf_for(olo)
            i = bisect.bisect_left(leaf.keys, olo)
        else:
            leaf = self._first_leaf
            i = 0
        ohi = _orderable(hi) if hi is not None else None
        while leaf is not None:
            while i < len(leaf.keys):
                okey = leaf.keys[i]
                if (
                    olo is not None
                    and not lo_inclusive
                    and okey[: len(olo)] == olo
                ):
                    i += 1
                    continue
                if ohi is not None:
                    prefix = okey[: len(ohi)]
                    if prefix > ohi or (prefix == ohi and not hi_inclusive):
                        return
                key, stored = leaf.values[i]
                if self.unique:
                    yield key, stored
                else:
                    for payload in stored:
                        yield key, payload
                i += 1
            leaf = leaf.next_leaf
            i = 0

    # -- internals ------------------------------------------------------------------

    def _leaf_for(self, okey: Tuple[Any, ...]) -> _Node:
        node = self._root
        visited = 1
        while not node.is_leaf:
            i = bisect.bisect_right(node.keys, okey)
            node = node.children[i]
            visited += 1
        io = self.io
        io.incr("seeks")
        io.incr("node_visits", visited)
        return node

    def _insert(
        self,
        node: _Node,
        okey: Tuple[Any, ...],
        key: Tuple[Any, ...],
        payload: Any,
    ) -> Optional[Tuple[Tuple[Any, ...], _Node]]:
        if node.is_leaf:
            i = bisect.bisect_left(node.keys, okey)
            if i < len(node.keys) and node.keys[i] == okey:
                if self.unique:
                    raise DuplicateKeyError(f"duplicate key {key!r}")
                node.values[i][1].append(payload)
                self._count += 1
                return None
            node.keys.insert(i, okey)
            stored = payload if self.unique else [payload]
            node.values.insert(i, (key, stored))
            self._count += 1
            if len(node.keys) > self._order:
                return self._split_leaf(node)
            return None
        i = bisect.bisect_right(node.keys, okey)
        split = self._insert(node.children[i], okey, key, payload)
        if split is None:
            return None
        sep, right = split
        node.keys.insert(i, sep)
        node.children.insert(i + 1, right)
        if len(node.keys) > self._order:
            return self._split_internal(node)
        return None

    def _split_leaf(self, node: _Node) -> Tuple[Tuple[Any, ...], _Node]:
        mid = len(node.keys) // 2
        right = _Node(is_leaf=True)
        right.keys = node.keys[mid:]
        right.values = node.values[mid:]
        node.keys = node.keys[:mid]
        node.values = node.values[:mid]
        right.next_leaf = node.next_leaf
        node.next_leaf = right
        return right.keys[0], right

    def _split_internal(self, node: _Node) -> Tuple[Tuple[Any, ...], _Node]:
        mid = len(node.keys) // 2
        sep = node.keys[mid]
        right = _Node(is_leaf=False)
        right.keys = node.keys[mid + 1 :]
        right.children = node.children[mid + 1 :]
        node.keys = node.keys[:mid]
        node.children = node.children[: mid + 1]
        return sep, right

    # -- diagnostics ----------------------------------------------------------------

    def depth(self) -> int:
        node, depth = self._root, 1
        while not node.is_leaf:
            node = node.children[0]
            depth += 1
        return depth
