"""Index structures."""

from .btree import BPlusTree

__all__ = ["BPlusTree"]
