"""Aggregate state machines.

Built-in aggregates (COUNT/SUM/MIN/MAX/AVG) and the adapter that runs a
registered UDA under the same interface. Every state supports ``merge``
so the exchange operator can combine partial aggregates computed on
separate partitions — the property that lets the optimizer parallelise
UDAs "just like built-in aggregates" (paper Section 2.3.4).
"""

from __future__ import annotations

from typing import Any, Callable, List, Optional, Sequence, Tuple, Type

from ..errors import BindError, UdfError
from ..udf import UserDefinedAggregate


class AggregateState:
    """One group's accumulator for one aggregate expression."""

    def add(self, row: Sequence[Any]) -> None:
        raise NotImplementedError

    def add_values(self, values: Sequence[Any]) -> None:
        """Bulk-accumulate pre-extracted argument values, bit-identical
        to calling :meth:`add` once per value in the same order (sums
        left-fold from the current total). Built-ins override this with
        C-level bulk operations; worker processes use it to aggregate a
        whole group bucket without a per-row interpreter loop. UDAs do
        not implement it — they see rows, not values."""
        raise NotImplementedError

    def merge(self, other: "AggregateState") -> None:
        raise NotImplementedError

    def result(self) -> Any:
        raise NotImplementedError


class _CountStar(AggregateState):
    __slots__ = ("count",)

    def __init__(self, _fn=None):
        self.count = 0

    def add(self, row):
        self.count += 1

    def add_values(self, values):
        # values may be the raw bucket rows: only the length matters
        self.count += len(values)

    def merge(self, other):
        self.count += other.count

    def result(self):
        return self.count


class _CountValue(AggregateState):
    __slots__ = ("count", "_fn")

    def __init__(self, fn):
        self.count = 0
        self._fn = fn

    def add(self, row):
        if self._fn(row) is not None:
            self.count += 1

    def add_values(self, values):
        self.count += len(values) - values.count(None)

    def merge(self, other):
        self.count += other.count

    def result(self):
        return self.count


class _CountDistinct(AggregateState):
    __slots__ = ("values", "_fn")

    def __init__(self, fn):
        self.values = set()
        self._fn = fn

    def add(self, row):
        value = self._fn(row)
        if value is not None:
            self.values.add(value)

    def add_values(self, values):
        self.values.update(values)
        self.values.discard(None)

    def merge(self, other):
        self.values |= other.values

    def result(self):
        return len(self.values)


class _Sum(AggregateState):
    __slots__ = ("total", "seen", "_fn")

    def __init__(self, fn):
        self.total = 0
        self.seen = False
        self._fn = fn

    def add(self, row):
        value = self._fn(row)
        if value is not None:
            self.total += value
            self.seen = True

    def add_values(self, values):
        live = [v for v in values if v is not None]
        if live:
            # sum() left-folds from the current total: the identical
            # addition sequence to add()-per-value, so floats match bit
            # for bit
            self.total = sum(live, self.total)
            self.seen = True

    def merge(self, other):
        self.total += other.total
        self.seen = self.seen or other.seen

    def result(self):
        return self.total if self.seen else None


class _Min(AggregateState):
    __slots__ = ("best", "_fn")

    def __init__(self, fn):
        self.best = None
        self._fn = fn

    def add(self, row):
        value = self._fn(row)
        if value is not None and (self.best is None or value < self.best):
            self.best = value

    def add_values(self, values):
        live = [v for v in values if v is not None]
        if live:
            # min() keeps the first minimal element, like add()'s strict <
            value = min(live)
            if self.best is None or value < self.best:
                self.best = value

    def merge(self, other):
        if other.best is not None and (self.best is None or other.best < self.best):
            self.best = other.best

    def result(self):
        return self.best


class _Max(AggregateState):
    __slots__ = ("best", "_fn")

    def __init__(self, fn):
        self.best = None
        self._fn = fn

    def add(self, row):
        value = self._fn(row)
        if value is not None and (self.best is None or value > self.best):
            self.best = value

    def add_values(self, values):
        live = [v for v in values if v is not None]
        if live:
            value = max(live)
            if self.best is None or value > self.best:
                self.best = value

    def merge(self, other):
        if other.best is not None and (self.best is None or other.best > self.best):
            self.best = other.best

    def result(self):
        return self.best


class _Avg(AggregateState):
    __slots__ = ("total", "count", "_fn")

    def __init__(self, fn):
        self.total = 0.0
        self.count = 0
        self._fn = fn

    def add(self, row):
        value = self._fn(row)
        if value is not None:
            self.total += value
            self.count += 1

    def add_values(self, values):
        live = [v for v in values if v is not None]
        if live:
            self.total = sum(live, self.total)
            self.count += len(live)

    def merge(self, other):
        self.total += other.total
        self.count += other.count

    def result(self):
        return self.total / self.count if self.count else None


class _UdaState(AggregateState):
    """Adapter running a :class:`UserDefinedAggregate` instance."""

    __slots__ = ("instance", "_fns")

    def __init__(self, uda_class: Type[UserDefinedAggregate], fns):
        self.instance = uda_class()
        self.instance.init()
        self._fns = fns

    def add(self, row):
        self.instance.accumulate(*[fn(row) for fn in self._fns])

    def merge(self, other: "_UdaState"):
        if not self.instance.parallel_safe:
            raise UdfError(
                f"UDA {self.instance.name!r} is not parallel-safe but was "
                "asked to merge partial states"
            )
        self.instance.merge(other.instance)

    def result(self):
        return self.instance.terminate()


class AggregateSpec:
    """Describes one aggregate expression in a GROUP BY query.

    Parameters
    ----------
    name:
        Aggregate name (``count``, ``sum``, ... or a registered UDA name).
    arg_fns:
        Compiled argument accessors (empty for ``COUNT(*)``).
    star / distinct:
        ``COUNT(*)`` / ``COUNT(DISTINCT x)`` flags.
    uda_class:
        The UDA class when ``name`` is user-defined.
    arg_index:
        When the single argument is a plain column, its input-row
        position — lets batch mode extract values by index instead of
        calling the compiled closure per row.
    """

    def __init__(
        self,
        name: str,
        arg_fns: Sequence[Callable[[Sequence[Any]], Any]],
        star: bool = False,
        distinct: bool = False,
        uda_class: Optional[Type[UserDefinedAggregate]] = None,
        arg_index: Optional[int] = None,
    ):
        self.name = name.lower()
        self.arg_fns = list(arg_fns)
        self.star = star
        self.distinct = distinct
        self.uda_class = uda_class
        self.arg_index = arg_index
        if uda_class is None and self.name not in (
            "count",
            "count_big",
            "sum",
            "min",
            "max",
            "avg",
        ):
            raise BindError(f"unknown aggregate {name!r}")

    @property
    def parallel_safe(self) -> bool:
        if self.uda_class is not None:
            # the declared flag only counts when the verifier confirmed
            # a merge() actually exists (_merge_verified, set at
            # registration); an unregistered class is taken at its word
            return bool(self.uda_class.parallel_safe) and bool(
                getattr(self.uda_class, "_merge_verified", True)
            )
        return True

    @property
    def requires_ordered_input(self) -> bool:
        return bool(
            self.uda_class is not None and self.uda_class.requires_ordered_input
        )

    def new_state(self) -> AggregateState:
        if self.uda_class is not None:
            return _UdaState(self.uda_class, self.arg_fns)
        fn = self.arg_fns[0] if self.arg_fns else None
        if self.name in ("count", "count_big"):
            if self.star:
                return _CountStar()
            if self.distinct:
                return _CountDistinct(fn)
            return _CountValue(fn)
        if self.name == "sum":
            return _Sum(fn)
        if self.name == "min":
            return _Min(fn)
        if self.name == "max":
            return _Max(fn)
        if self.name == "avg":
            return _Avg(fn)
        raise BindError(f"unknown aggregate {self.name!r}")

    @property
    def batch_capable(self) -> bool:
        """Does a batch accumulator exist for this aggregate?

        UDAs stay row-at-a-time (their accumulate contract is per-row);
        every built-in with at most one argument is coverable."""
        if self.uda_class is not None:
            return False
        return self.star or len(self.arg_fns) == 1

    def describe(self) -> str:
        if self.star:
            return f"{self.name.upper()}(*)"
        inner = "DISTINCT ..." if self.distinct else "..."
        return f"{self.name.upper()}({inner})"


# ---------------------------------------------------------------------------
# batch-mode accumulators
# ---------------------------------------------------------------------------
#
# Row mode keeps one AggregateState per (group, aggregate) and dispatches
# ``state.add(row)`` per input row.  Batch mode inverts that: one
# accumulator per aggregate holds a dict keyed by group key and consumes a
# whole batch per call, so the per-row work is a zip over two lists.  The
# numeric semantics deliberately replicate the row-mode states item for
# item (SUM starts from int 0, AVG from float 0.0, additions happen in
# input order) so both modes produce bit-identical results.


class BatchAccumulator:
    """Per-aggregate, all-groups batch accumulator.

    ``add_batch`` consumes a row batch (extracting argument values with
    the compiled getter); ``add_vector`` consumes pre-extracted value
    vectors, which is how the encoded column-scan path feeds aggregates
    without ever materialising row tuples.  Accumulators that can
    exploit a run-length-encoded group key additionally expose
    ``add_runs`` / ``add_slices``; callers must only use the slice path
    where slice-at-a-time evaluation is bit-identical to value-at-a-time
    (counts and min/max always are; SUM only over exact integers).
    """

    #: does this accumulator implement add_slices()?
    slice_capable = False

    def add_batch(self, keys: Sequence[Any], batch: Sequence[Sequence[Any]]) -> None:
        raise NotImplementedError

    def add_vector(self, keys: Sequence[Any], values: Sequence[Any]) -> None:
        raise NotImplementedError

    def result(self, key: Any) -> Any:
        raise NotImplementedError


class _BatchCountStar(BatchAccumulator):
    __slots__ = ("counts",)

    def __init__(self, _getter=None):
        from collections import Counter

        self.counts = Counter()

    def add_batch(self, keys, batch):
        self.counts.update(keys)

    def add_vector(self, keys, values=None):
        self.counts.update(keys)

    def add_runs(self, runs):
        """Run-length-weighted counting: one dict update per run of the
        RLE-encoded group key instead of one per row."""
        counts = self.counts
        for value, count in runs:
            counts[value] += count

    def result(self, key):
        return self.counts[key]


class _BatchCountValue(BatchAccumulator):
    __slots__ = ("counts", "_getter")

    slice_capable = True

    def __init__(self, getter):
        self.counts: dict = {}
        self._getter = getter

    def add_batch(self, keys, batch):
        self.add_vector(keys, self._getter(batch))

    def add_vector(self, keys, values):
        counts = self.counts
        for key, value in zip(keys, values):
            if value is not None:
                counts[key] = counts.get(key, 0) + 1

    def add_slices(self, runs, values):
        counts = self.counts
        offset = 0
        for key, count in runs:
            chunk = values[offset : offset + count]
            offset += count
            n = count - chunk.count(None)
            if n:
                counts[key] = counts.get(key, 0) + n

    def result(self, key):
        return self.counts.get(key, 0)


class _BatchCountDistinct(BatchAccumulator):
    __slots__ = ("values", "_getter")

    def __init__(self, getter):
        self.values: dict = {}
        self._getter = getter

    def add_batch(self, keys, batch):
        self.add_vector(keys, self._getter(batch))

    def add_vector(self, keys, values):
        buckets = self.values
        for key, value in zip(keys, values):
            if value is not None:
                bucket = buckets.get(key)
                if bucket is None:
                    buckets[key] = {value}
                else:
                    bucket.add(value)

    def result(self, key):
        return len(self.values.get(key, ()))


class _BatchSum(BatchAccumulator):
    __slots__ = ("totals", "_getter")

    # slice summation reassociates floating-point addition, so the
    # caller gates add_slices to exact (integer) columns
    slice_capable = True

    def __init__(self, getter):
        self.totals: dict = {}
        self._getter = getter

    def add_batch(self, keys, batch):
        self.add_vector(keys, self._getter(batch))

    def add_vector(self, keys, values):
        totals = self.totals
        for key, value in zip(keys, values):
            if value is not None:
                # absent key starts from int 0, exactly like _Sum
                totals[key] = totals.get(key, 0) + value

    def add_slices(self, runs, values):
        totals = self.totals
        offset = 0
        for key, count in runs:
            chunk = values[offset : offset + count]
            offset += count
            if None in chunk:
                chunk = [v for v in chunk if v is not None]
                if not chunk:
                    continue
            totals[key] = totals.get(key, 0) + sum(chunk)

    def result(self, key):
        # a group whose values were all NULL never materialises a total,
        # matching _Sum's seen=False -> NULL
        return self.totals.get(key)


class _BatchMin(BatchAccumulator):
    __slots__ = ("best", "_getter")

    slice_capable = True

    def __init__(self, getter):
        self.best: dict = {}
        self._getter = getter

    def add_batch(self, keys, batch):
        self.add_vector(keys, self._getter(batch))

    def add_vector(self, keys, values):
        best = self.best
        for key, value in zip(keys, values):
            if value is not None:
                held = best.get(key)
                if held is None or value < held:
                    best[key] = value

    def add_slices(self, runs, values):
        best = self.best
        offset = 0
        for key, count in runs:
            chunk = values[offset : offset + count]
            offset += count
            if None in chunk:
                chunk = [v for v in chunk if v is not None]
                if not chunk:
                    continue
            value = min(chunk)
            held = best.get(key)
            if held is None or value < held:
                best[key] = value

    def result(self, key):
        return self.best.get(key)


class _BatchMax(BatchAccumulator):
    __slots__ = ("best", "_getter")

    slice_capable = True

    def __init__(self, getter):
        self.best: dict = {}
        self._getter = getter

    def add_batch(self, keys, batch):
        self.add_vector(keys, self._getter(batch))

    def add_vector(self, keys, values):
        best = self.best
        for key, value in zip(keys, values):
            if value is not None:
                held = best.get(key)
                if held is None or value > held:
                    best[key] = value

    def add_slices(self, runs, values):
        best = self.best
        offset = 0
        for key, count in runs:
            chunk = values[offset : offset + count]
            offset += count
            if None in chunk:
                chunk = [v for v in chunk if v is not None]
                if not chunk:
                    continue
            value = max(chunk)
            held = best.get(key)
            if held is None or value > held:
                best[key] = value

    def result(self, key):
        return self.best.get(key)


class _BatchAvg(BatchAccumulator):
    __slots__ = ("states", "_getter")

    def __init__(self, getter):
        self.states: dict = {}  # key -> [total, count]
        self._getter = getter

    def add_batch(self, keys, batch):
        self.add_vector(keys, self._getter(batch))

    def add_vector(self, keys, values):
        states = self.states
        for key, value in zip(keys, values):
            if value is not None:
                state = states.get(key)
                if state is None:
                    # float 0.0 start, matching _Avg
                    states[key] = [0.0 + value, 1]
                else:
                    state[0] += value
                    state[1] += 1

    def result(self, key):
        state = self.states.get(key)
        return state[0] / state[1] if state else None


def make_batch_accumulator(spec: AggregateSpec) -> BatchAccumulator:
    """Build the batch accumulator mirroring ``spec.new_state()``."""
    if not spec.batch_capable:
        raise BindError(f"aggregate {spec.name!r} has no batch accumulator")
    if spec.star:
        return _BatchCountStar()
    if spec.arg_index is not None:
        index = spec.arg_index

        def getter(batch, index=index):
            return [row[index] for row in batch]

    else:
        fn = spec.arg_fns[0]

        def getter(batch, fn=fn):
            return [fn(row) for row in batch]

    if spec.name in ("count", "count_big"):
        if spec.distinct:
            return _BatchCountDistinct(getter)
        return _BatchCountValue(getter)
    if spec.name == "sum":
        return _BatchSum(getter)
    if spec.name == "min":
        return _BatchMin(getter)
    if spec.name == "max":
        return _BatchMax(getter)
    return _BatchAvg(getter)
