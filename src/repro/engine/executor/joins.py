"""Join operators: nested-loop, hash join, and merge join.

The paper's Figure 10 plan hinges on the merge join: with clustered
indexes chosen so both inputs arrive ordered on the join key, the join
streams at ~1.6 M alignments/s on the authors' box without any build
phase. The hash join is the fallback when order is unavailable.
"""

from __future__ import annotations

from operator import itemgetter
from typing import Any, Callable, Iterator, List, Optional, Sequence, Tuple

from ..errors import ExecutionError
from .base import PhysicalOperator
from .vector import RowBatch

RowFn = Callable[[Sequence[Any]], Any]


def _tuple_key_getter(
    indexes: Optional[Sequence[int]], fns: Sequence[RowFn]
) -> Callable[[Sequence[Any]], Tuple[Any, ...]]:
    """row -> join-key tuple, by position when the keys are plain columns."""
    if indexes is not None:
        if len(indexes) == 1:
            index = indexes[0]
            return lambda row: (row[index],)
        return itemgetter(*indexes)
    return lambda row: tuple(fn(row) for fn in fns)


class NestedLoopJoin(PhysicalOperator):
    """Inner nested-loop join with an arbitrary residual predicate.

    The inner input is materialised once; used only for small inners or
    non-equi predicates.
    """

    def __init__(
        self,
        outer: PhysicalOperator,
        inner: PhysicalOperator,
        predicate: Optional[RowFn] = None,
    ):
        super().__init__()
        self.outer = outer
        self.inner = inner
        self.predicate = predicate
        self.columns = list(outer.columns) + list(inner.columns)
        self.ordering = outer.ordering

    def execute(self):
        inner_rows = list(self.inner)
        predicate = self.predicate
        for outer_row in self.outer:
            for inner_row in inner_rows:
                combined = outer_row + inner_row
                if predicate is None or predicate(combined) is True:
                    yield combined

    def children(self):
        return (self.outer, self.inner)

    def explain_node(self):
        return "Nested Loops (Inner Join)", (self.outer, self.inner)


class HashJoin(PhysicalOperator):
    """Hash Match (Inner Join) on equality keys.

    Builds on the right input, probes with the left. NULL keys never
    match (SQL equality semantics).
    """

    batch_capable = True

    def __init__(
        self,
        left: PhysicalOperator,
        right: PhysicalOperator,
        left_key_fns: Sequence[RowFn],
        right_key_fns: Sequence[RowFn],
        residual: Optional[RowFn] = None,
        left_key_indexes: Optional[Sequence[int]] = None,
        right_key_indexes: Optional[Sequence[int]] = None,
    ):
        super().__init__()
        if len(left_key_fns) != len(right_key_fns):
            raise ExecutionError("join key arity mismatch")
        self.left = left
        self.right = right
        self.left_key_fns = list(left_key_fns)
        self.right_key_fns = list(right_key_fns)
        #: row positions of the keys when they are plain columns; batch
        #: mode then extracts keys positionally instead of per-closure
        self.left_key_indexes = (
            tuple(left_key_indexes) if left_key_indexes is not None else None
        )
        self.right_key_indexes = (
            tuple(right_key_indexes) if right_key_indexes is not None else None
        )
        self.residual = residual
        self.columns = list(left.columns) + list(right.columns)
        # probing streams the left input in order; matches are emitted
        # per left row, so the left ordering survives the join
        self.ordering = left.ordering

    def execute(self):
        build: dict = {}
        right_keys = self.right_key_fns
        for row in self.right:
            key = tuple(fn(row) for fn in right_keys)
            if any(v is None for v in key):
                continue
            build.setdefault(key, []).append(row)
        left_keys = self.left_key_fns
        residual = self.residual
        for left_row in self.left:
            key = tuple(fn(left_row) for fn in left_keys)
            if any(v is None for v in key):
                continue
            matches = build.get(key)
            if not matches:
                continue
            for right_row in matches:
                combined = left_row + right_row
                if residual is None or residual(combined) is True:
                    yield combined

    def execute_batch(self):
        # build batch-at-a-time from the right input
        right_key_of = _tuple_key_getter(
            self.right_key_indexes, self.right_key_fns
        )
        build: dict = {}
        for batch in self.right.iter_batches():
            for row in batch:
                key = right_key_of(row)
                if any(v is None for v in key):
                    continue
                build.setdefault(key, []).append(row)
        # probe: one output batch per left batch, left order preserved
        left_key_of = _tuple_key_getter(self.left_key_indexes, self.left_key_fns)
        residual = self.residual
        get_matches = build.get
        for batch in self.left.iter_batches():
            out = RowBatch()
            append = out.append
            for left_row in batch:
                key = left_key_of(left_row)
                matches = get_matches(key)
                if not matches:
                    continue
                for right_row in matches:
                    combined = left_row + right_row
                    if residual is None or residual(combined) is True:
                        append(combined)
            if out:
                yield out

    def children(self):
        return (self.left, self.right)

    def explain_node(self):
        return "Hash Match (Inner Join)", (self.left, self.right)


class MergeJoin(PhysicalOperator):
    """Merge Join (Inner Join) over inputs pre-ordered on the join keys.

    Duplicate keys on both sides are handled by buffering the right-side
    group. Streaming and non-blocking: rows flow as soon as keys align,
    which is what lets the consensus plan feed its ordered UDA without
    a sort.
    """

    def __init__(
        self,
        left: PhysicalOperator,
        right: PhysicalOperator,
        left_key_fns: Sequence[RowFn],
        right_key_fns: Sequence[RowFn],
        residual: Optional[RowFn] = None,
    ):
        super().__init__()
        if len(left_key_fns) != len(right_key_fns):
            raise ExecutionError("join key arity mismatch")
        self.left = left
        self.right = right
        self.left_key_fns = list(left_key_fns)
        self.right_key_fns = list(right_key_fns)
        self.residual = residual
        self.columns = list(left.columns) + list(right.columns)
        self.ordering = left.ordering

    @staticmethod
    def _key_cmp(a: Tuple[Any, ...], b: Tuple[Any, ...]) -> int:
        # NULL keys never join; treat them as smallest so they are skipped
        for x, y in zip(a, b):
            xk = (0, 0) if x is None else (1, x)
            yk = (0, 0) if y is None else (1, y)
            if xk < yk:
                return -1
            if xk > yk:
                return 1
        return 0

    def execute(self):
        left_iter = iter(self.left)
        right_iter = iter(self.right)
        left_keys = self.left_key_fns
        right_keys = self.right_key_fns
        residual = self.residual

        def next_or_none(iterator):
            return next(iterator, None)

        left_row = next_or_none(left_iter)
        right_row = next_or_none(right_iter)
        while left_row is not None and right_row is not None:
            lkey = tuple(fn(left_row) for fn in left_keys)
            rkey = tuple(fn(right_row) for fn in right_keys)
            if any(v is None for v in lkey):
                left_row = next_or_none(left_iter)
                continue
            if any(v is None for v in rkey):
                right_row = next_or_none(right_iter)
                continue
            cmp = self._key_cmp(lkey, rkey)
            if cmp < 0:
                left_row = next_or_none(left_iter)
            elif cmp > 0:
                right_row = next_or_none(right_iter)
            else:
                # buffer the right-side duplicate group for this key
                group: List[Tuple[Any, ...]] = [right_row]
                right_row = next_or_none(right_iter)
                while right_row is not None:
                    nkey = tuple(fn(right_row) for fn in right_keys)
                    if self._key_cmp(nkey, rkey) == 0:
                        group.append(right_row)
                        right_row = next_or_none(right_iter)
                    else:
                        break
                while left_row is not None:
                    ckey = tuple(fn(left_row) for fn in left_keys)
                    if self._key_cmp(ckey, rkey) != 0:
                        break
                    for match in group:
                        combined = left_row + match
                        if residual is None or residual(combined) is True:
                            yield combined
                    left_row = next_or_none(left_iter)

    def children(self):
        return (self.left, self.right)

    def explain_node(self):
        return "Merge Join (Inner Join)", (self.left, self.right)
