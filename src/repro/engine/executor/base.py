"""Physical operator base class (Volcano / iterator model).

Every operator exposes:

- ``columns`` — output column names, optionally qualified (``alias.name``)
  so the binder can resolve references against the operator's output;
- iteration — ``__iter__`` yields result tuples, pulling from children
  one row at a time (streaming, non-blocking unless noted);
- ``explain_node()`` — a one-line label plus children, rendered by the
  planner into the text query plans that stand in for the paper's
  Figures 9 and 10.

Operators also count the rows they emit (``rows_out``) so EXPLAIN output
and the benchmarks can report actual cardinalities, e.g. the size of the
pivot plan's intermediate result in Section 5.3.3.  A re-executed
operator (the inner side of a nested-loops join or apply) additionally
tracks ``loops`` and per-loop row counts, and — when EXPLAIN ANALYZE
arms timing via :meth:`PhysicalOperator.enable_timing` — the inclusive
wall-clock time spent producing its rows, Postgres-style.  Timing is off
by default so plain execution stays on the untimed fast path.
"""

from __future__ import annotations

import time
from typing import Any, Iterator, List, Optional, Sequence, Tuple

from .vector import RowBatch, batches_from_rows


class PhysicalOperator:
    """Base class for all physical operators."""

    #: output column names; qualified ("a.x") or bare
    columns: List[str]
    #: does iteration deliver rows ordered by these output column indexes?
    ordering: Tuple[int, ...] = ()
    #: operators that must consume their entire input before producing
    #: the first output row (sorts, hash builds) mark themselves blocking
    blocking: bool = False
    #: does this operator implement :meth:`execute_batch`?  Instances may
    #: override (e.g. a TableScan over a virtual table cannot batch)
    batch_capable: bool = False
    #: cardinality / cost estimates filled in by the cost model; None
    #: until the planner annotates the tree
    est_rows = None
    est_cost = None
    #: verifier/optimizer annotations the planner attaches to the plan
    #: root; EXPLAIN renders each as a trailing ``note:`` line
    plan_notes: Sequence[str] = ()

    def __init__(self):
        self.rows_out = 0
        #: completed + in-flight executions of this operator
        self.loops = 0
        #: rows emitted by each individual execution
        self.loop_rows: List[int] = []
        #: inclusive wall-clock seconds (self + children), all loops
        self.elapsed = 0.0
        self._timing = False
        #: first-pull / exhaustion perf_counter readings, recorded only
        #: when timing is armed; :func:`repro.engine.tracing.
        #: record_operator_spans` grafts these into the statement trace
        #: structurally after execution (generators interleave, so live
        #: span stacks would mis-nest)
        self._span_start: Optional[float] = None
        self._span_end: Optional[float] = None
        #: "row" or "batch"; the planner flips batch-capable operators
        #: to "batch" per pipeline after physical lowering
        self.execution_mode = "row"
        #: batches emitted (batch mode only)
        self.batches_out = 0

    def enable_timing(self) -> None:
        """Arm per-operator wall-clock timing on this subtree.

        Kept opt-in (EXPLAIN ANALYZE) so the per-row clock reads never
        tax ordinary execution."""
        self._timing = True
        for child in self.children():
            child.enable_timing()

    def __iter__(self) -> Iterator[Tuple[Any, ...]]:
        if self.execution_mode == "batch":
            # batch mode owns the accounting in iter_batches(); flatten
            for batch in self.iter_batches():
                yield from batch
            return
        loop_index = self.loops
        self.loops += 1
        self.loop_rows.append(0)
        emitted = 0
        iterator = self.execute()
        try:
            if not self._timing:
                for row in iterator:
                    emitted += 1
                    yield row
            else:
                clock = time.perf_counter
                if self._span_start is None:
                    self._span_start = clock()
                while True:
                    t0 = clock()
                    try:
                        row = next(iterator)
                    except StopIteration:
                        self.elapsed += clock() - t0
                        break
                    self.elapsed += clock() - t0
                    emitted += 1
                    yield row
        finally:
            # flush even when abandoned mid-stream (Top, semi-joins)
            self.rows_out += emitted
            self.loop_rows[loop_index] = emitted
            if self._timing:
                self._span_end = time.perf_counter()

    def execute(self) -> Iterator[Tuple[Any, ...]]:
        raise NotImplementedError

    # -- batch mode ---------------------------------------------------------------

    def execute_batch(self) -> Iterator[RowBatch]:
        """Yield :class:`RowBatch` objects (batch-capable operators only)."""
        raise NotImplementedError(
            f"{type(self).__name__} has no batch-mode implementation"
        )

    def iter_batches(self, batch_size: int = None) -> Iterator[RowBatch]:
        """Iterate this operator batch-at-a-time.

        In batch mode this is the accounted execution entry point
        (mirroring ``__iter__`` for row mode): loop/row bookkeeping is
        flushed even when the consumer stops mid-stream, and — when
        EXPLAIN ANALYZE arms timing — the wall clock is read once per
        batch rather than once per row, so the observer overhead is
        divided by the batch size.  A row-mode operator is bridged by
        chunking its ordinary row iterator, which keeps mixed-mode
        pipelines composable in both directions."""
        if self.execution_mode != "batch":
            yield from batches_from_rows(iter(self), batch_size)
            return
        loop_index = self.loops
        self.loops += 1
        self.loop_rows.append(0)
        emitted = 0
        batches = 0
        iterator = self.execute_batch()
        try:
            if not self._timing:
                for batch in iterator:
                    emitted += len(batch)
                    batches += 1
                    yield batch
            else:
                clock = time.perf_counter
                if self._span_start is None:
                    self._span_start = clock()
                while True:
                    t0 = clock()
                    try:
                        batch = next(iterator)
                    except StopIteration:
                        self.elapsed += clock() - t0
                        break
                    self.elapsed += clock() - t0
                    emitted += len(batch)
                    batches += 1
                    yield batch
        finally:
            self.rows_out += emitted
            self.loop_rows[loop_index] = emitted
            self.batches_out += batches
            if self._timing:
                self._span_end = time.perf_counter()

    # -- explain -----------------------------------------------------------------

    def explain_node(self) -> Tuple[str, Sequence["PhysicalOperator"]]:
        """``(label, children)`` for plan rendering."""
        return type(self).__name__, self.children()

    def children(self) -> Sequence["PhysicalOperator"]:
        return ()

    def analyze_detail(self) -> Optional[str]:
        """Extra per-operator EXPLAIN ANALYZE annotation, or None.

        Exchange operators override this to report per-worker timing
        without the base renderer knowing about workers."""
        return None

    def explain(self, indent: int = 0, analyze: bool = False) -> str:
        """Render this subtree as an indented text plan.

        With ``analyze=True`` (EXPLAIN ANALYZE, after execution) each
        node also reports the actual row count, inclusive wall-clock
        time, and number of executions (loops) it observed."""
        label, kids = self.explain_node()
        prefix = "  " * indent
        label_lines = label.split("\n")
        first = label_lines[0]
        details: List[str] = []
        if self.est_rows is not None:
            details.append(f"est. rows={self.est_rows}")
        details.append(f"{self.execution_mode} mode")
        if analyze:
            details.append(f"actual rows={self.rows_out}")
            if self.execution_mode == "batch":
                details.append(f"batches={self.batches_out}")
            if self._timing:
                details.append(f"time={self.elapsed * 1000.0:.3f}ms")
            details.append(f"loops={self.loops}")
            extra = self.analyze_detail()
            if extra:
                details.append(extra)
        if self.est_rows is not None and self.est_cost is not None:
            details.append(f"cost={self.est_cost:.1f}")
        if details:
            first += f"  ({', '.join(details)})"
        lines = [prefix + "-> " + first]
        for continuation in label_lines[1:]:
            lines.append(prefix + "   " + continuation.strip())
        for kid in kids:
            lines.append(kid.explain(indent + 1, analyze=analyze))
        if indent == 0:
            for note in self.plan_notes:
                lines.append(f"note: {note}")
        return "\n".join(lines)

    # -- helpers ------------------------------------------------------------------

    @property
    def node_label(self) -> str:
        """Short operator name: the first line of the explain label with
        the per-node detail tail stripped (what diagnostics and traces
        name this node by). Distinct from the ``label`` attribute some
        operators carry for their predicate/projection description."""
        try:
            text, _children = self.explain_node()
        except Exception:  # noqa: BLE001 - labels must never raise
            return type(self).__name__
        text = text.splitlines()[0] if text else ""
        return text.split("  (")[0].strip() or type(self).__name__

    def walk(self, path: str = "") -> Iterator[Tuple[str, "PhysicalOperator"]]:
        """Yield ``(operator path, node)`` pairs over this subtree, root
        first. The path joins :attr:`node_label` values with ``/`` — the
        stable operator address the plan sanitizer reports findings
        against."""
        here = f"{path}/{self.node_label}" if path else self.node_label
        yield here, self
        for child in self.children():
            yield from child.walk(here)

    def column_index(self, name: str) -> int:
        """Resolve a bare or qualified column name to an output index."""
        lowered = name.lower()
        matches = [
            i
            for i, col in enumerate(self.columns)
            if col.lower() == lowered or col.lower().split(".")[-1] == lowered
        ]
        if len(matches) == 1:
            return matches[0]
        if not matches:
            raise KeyError(name)
        raise KeyError(f"ambiguous column {name!r}")


class MaterializedResult(PhysicalOperator):
    """A fully materialised rowset (used for VALUES lists, cached results,
    and as the output wrapper the database hands back to callers)."""

    def __init__(self, columns: Sequence[str], rows: Sequence[Tuple[Any, ...]]):
        super().__init__()
        self.columns = list(columns)
        self._rows = list(rows)

    def execute(self) -> Iterator[Tuple[Any, ...]]:
        return iter(self._rows)

    def __len__(self) -> int:
        return len(self._rows)

    @property
    def rows(self) -> List[Tuple[Any, ...]]:
        return self._rows

    def explain_node(self):
        return f"Constant Scan ({len(self._rows)} rows)", ()
