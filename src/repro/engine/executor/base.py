"""Physical operator base class (Volcano / iterator model).

Every operator exposes:

- ``columns`` — output column names, optionally qualified (``alias.name``)
  so the binder can resolve references against the operator's output;
- iteration — ``__iter__`` yields result tuples, pulling from children
  one row at a time (streaming, non-blocking unless noted);
- ``explain_node()`` — a one-line label plus children, rendered by the
  planner into the text query plans that stand in for the paper's
  Figures 9 and 10.

Operators also count the rows they emit (``rows_out``) so EXPLAIN output
and the benchmarks can report actual cardinalities, e.g. the size of the
pivot plan's intermediate result in Section 5.3.3.
"""

from __future__ import annotations

from typing import Any, Iterator, List, Sequence, Tuple


class PhysicalOperator:
    """Base class for all physical operators."""

    #: output column names; qualified ("a.x") or bare
    columns: List[str]
    #: does iteration deliver rows ordered by these output column indexes?
    ordering: Tuple[int, ...] = ()
    #: operators that must consume their entire input before producing
    #: the first output row (sorts, hash builds) mark themselves blocking
    blocking: bool = False
    #: cardinality / cost estimates filled in by the cost model; None
    #: until the planner annotates the tree
    est_rows = None
    est_cost = None

    def __init__(self):
        self.rows_out = 0

    def __iter__(self) -> Iterator[Tuple[Any, ...]]:
        iterator = self.execute()
        for row in iterator:
            self.rows_out += 1
            yield row

    def execute(self) -> Iterator[Tuple[Any, ...]]:
        raise NotImplementedError

    # -- explain -----------------------------------------------------------------

    def explain_node(self) -> Tuple[str, Sequence["PhysicalOperator"]]:
        """``(label, children)`` for plan rendering."""
        return type(self).__name__, self.children()

    def children(self) -> Sequence["PhysicalOperator"]:
        return ()

    def explain(self, indent: int = 0, analyze: bool = False) -> str:
        """Render this subtree as an indented text plan.

        With ``analyze=True`` (EXPLAIN ANALYZE, after execution) each
        node also reports the actual row count it produced."""
        label, kids = self.explain_node()
        prefix = "  " * indent
        label_lines = label.split("\n")
        first = label_lines[0]
        if self.est_rows is not None:
            details = [f"est. rows={self.est_rows}"]
            if analyze:
                details.append(f"actual rows={self.rows_out}")
            if self.est_cost is not None:
                details.append(f"cost={self.est_cost:.1f}")
            first += f"  ({', '.join(details)})"
        lines = [prefix + "-> " + first]
        for continuation in label_lines[1:]:
            lines.append(prefix + "   " + continuation.strip())
        for kid in kids:
            lines.append(kid.explain(indent + 1, analyze=analyze))
        return "\n".join(lines)

    # -- helpers ------------------------------------------------------------------

    def column_index(self, name: str) -> int:
        """Resolve a bare or qualified column name to an output index."""
        lowered = name.lower()
        matches = [
            i
            for i, col in enumerate(self.columns)
            if col.lower() == lowered or col.lower().split(".")[-1] == lowered
        ]
        if len(matches) == 1:
            return matches[0]
        if not matches:
            raise KeyError(name)
        raise KeyError(f"ambiguous column {name!r}")


class MaterializedResult(PhysicalOperator):
    """A fully materialised rowset (used for VALUES lists, cached results,
    and as the output wrapper the database hands back to callers)."""

    def __init__(self, columns: Sequence[str], rows: Sequence[Tuple[Any, ...]]):
        super().__init__()
        self.columns = list(columns)
        self._rows = list(rows)

    def execute(self) -> Iterator[Tuple[Any, ...]]:
        return iter(self._rows)

    def __len__(self) -> int:
        return len(self._rows)

    @property
    def rows(self) -> List[Tuple[Any, ...]]:
        return self._rows

    def explain_node(self):
        return f"Constant Scan ({len(self._rows)} rows)", ()
