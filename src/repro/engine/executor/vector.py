"""Batch-at-a-time (vectorized) execution primitives.

The row-mode Volcano interpreter pays a Python generator resumption and
a virtual dispatch per row per operator.  Batch mode amortises that cost
by moving a :class:`RowBatch` — up to :data:`DEFAULT_BATCH_SIZE` tuples —
through each operator call, so the per-row work inside an operator is a
tight list comprehension or a ``map`` over a precompiled closure rather
than an interpreter round-trip.  The same idea drives SQL Server's
batch-mode execution and the array-granularity processing of the
SQL Server array library (Dobos et al.): touch each datum once, in bulk.

This module deliberately imports nothing from the rest of the executor
package so both :mod:`.base` and :mod:`repro.engine.storage` can depend
on it without cycles.
"""

from __future__ import annotations

import operator
from itertools import islice
from typing import Any, Callable, Iterable, Iterator, List, Sequence, Tuple

#: rows per batch; tests may monkeypatch this module attribute to force
#: degenerate batch sizes (1, or larger than the table)
DEFAULT_BATCH_SIZE = 1024


class RowBatch(list):
    """A batch of result tuples.

    Just a ``list`` with a distinct type so call sites can assert they
    were handed a batch; keeping it a real list means every consumer
    (``len``, ``extend``, slicing, comprehensions) runs at C speed."""

    __slots__ = ()


def batches_from_rows(
    rows: Iterable[Tuple[Any, ...]], batch_size: int = None
) -> Iterator[RowBatch]:
    """Chunk a row iterator into :class:`RowBatch` objects.

    ``batch_size`` resolves against :data:`DEFAULT_BATCH_SIZE` at call
    time, so monkeypatching the module attribute affects every bridge."""
    size = batch_size or DEFAULT_BATCH_SIZE
    iterator = iter(rows)
    while True:
        batch = RowBatch(islice(iterator, size))
        if not batch:
            return
        yield batch


def make_row_projector(
    positions: Sequence[int],
) -> Callable[[Tuple[Any, ...]], Tuple[Any, ...]]:
    """A per-row positional projection: ``row -> tuple`` without a
    per-row generator expression.

    ``operator.itemgetter`` returns a bare value (not a 1-tuple) for a
    single index, so that arity gets a dedicated closure."""
    if len(positions) == 1:
        index = positions[0]
        return lambda row: (row[index],)
    return operator.itemgetter(*positions)


def make_batch_projector(
    positions: Sequence[int],
) -> Callable[[Sequence[Tuple[Any, ...]]], RowBatch]:
    """A whole-batch positional projection: ``batch -> RowBatch``."""
    if len(positions) == 1:
        index = positions[0]
        return lambda batch: RowBatch((row[index],) for row in batch)
    getter = operator.itemgetter(*positions)
    return lambda batch: RowBatch(map(getter, batch))


def collect_rows(op: Any) -> List[Tuple[Any, ...]]:
    """Materialise an operator's full output as a list of rows.

    Uses the batch interface when the root runs in batch mode so
    materialisation extends list-at-a-time instead of paying the
    row-at-a-time ``__iter__`` bridge."""
    if getattr(op, "execution_mode", "row") == "batch":
        rows: List[Tuple[Any, ...]] = []
        for batch in op.iter_batches():
            rows.extend(batch)
        return rows
    return list(op)
