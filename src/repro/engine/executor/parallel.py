"""Parallel query execution: the exchange operator and the DOP simulator.

SQL Server parallelises a hash aggregate by hash-partitioning rows across
worker threads (Repartition Streams), running a *partial* aggregate per
worker, and gathering the results (Gather Streams) — the Figure 9 plan of
the paper. This module reproduces that plan shape.

**Hardware substitution.** The paper's testbed had four cores; this
reproduction runs on a single-core container, so true thread-level
speedup is unobservable. The exchange operator therefore executes its
partitions serially but *measures each phase separately* and reports a
simulated multi-core wall clock::

    simulated_wall = (scan_time + partition_time) / dop     # parallel scan
                   + LPT_schedule(per_partition_agg_times)  # parallel work
                   + gather_time                            # serial gather

where ``LPT_schedule`` assigns partition tasks to ``dop`` workers
longest-processing-time-first and returns the makespan. With one
partition per worker this is simply the slowest partition. Both the
measured single-core time and the simulated parallel time are exposed via
:attr:`ParallelHashAggregate.stats`; benchmarks report the two numbers
side by side. Hash partitioning on the group key guarantees partial
groups never span partitions, so the gather phase is a concatenation —
exactly why SQL Server can parallelise UDAs that declare themselves
merge-safe.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Callable, List, Optional, Sequence

from ..errors import ExecutionError
from .aggregates import AggregateSpec, make_batch_accumulator
from .base import PhysicalOperator
from .vector import batches_from_rows

RowFn = Callable[[Sequence[Any]], Any]


def lpt_makespan(task_times: Sequence[float], workers: int) -> float:
    """Makespan of the longest-processing-time-first schedule."""
    if workers <= 0:
        raise ExecutionError("workers must be positive")
    loads = [0.0] * workers
    for duration in sorted(task_times, reverse=True):
        loads[loads.index(min(loads))] += duration
    return max(loads) if loads else 0.0


@dataclass
class ParallelStats:
    """Phase timings captured by one exchange execution (seconds)."""

    dop: int = 1
    scan_time: float = 0.0
    partition_time: float = 0.0
    partition_agg_times: List[float] = field(default_factory=list)
    gather_time: float = 0.0
    rows_in: int = 0
    rows_out: int = 0
    #: batches consumed from the child (repartitioning is batch-granular)
    batches_in: int = 0

    @property
    def measured_wall(self) -> float:
        return (
            self.scan_time
            + self.partition_time
            + sum(self.partition_agg_times)
            + self.gather_time
        )

    @property
    def simulated_wall(self) -> float:
        return (
            (self.scan_time + self.partition_time) / self.dop
            + lpt_makespan(self.partition_agg_times, self.dop)
            + self.gather_time
        )

    @property
    def simulated_speedup(self) -> float:
        simulated = self.simulated_wall
        return self.measured_wall / simulated if simulated > 0 else 1.0


class ParallelHashAggregate(PhysicalOperator):
    """Repartition Streams → per-worker Hash Aggregate → Gather Streams.

    Output is identical to :class:`HashAggregate`; the difference is the
    partitioned execution and the :class:`ParallelStats` it records.
    Aggregates must be parallel-safe (mergeable partial states).
    """

    blocking = True
    batch_capable = True

    def __init__(
        self,
        child: PhysicalOperator,
        group_fns: Sequence[RowFn],
        group_names: Sequence[str],
        aggregates: Sequence[AggregateSpec],
        agg_names: Sequence[str],
        dop: int = 4,
        group_indexes: Optional[Sequence[int]] = None,
    ):
        super().__init__()
        if dop < 1:
            raise ExecutionError("degree of parallelism must be >= 1")
        for spec in aggregates:
            if not spec.parallel_safe:
                raise ExecutionError(
                    f"aggregate {spec.name!r} is not parallel-safe"
                )
        self.child = child
        self.group_fns = list(group_fns)
        self.aggregates = list(aggregates)
        self.columns = list(group_names) + list(agg_names)
        self.dop = dop
        self.group_indexes = tuple(group_indexes) if group_indexes else None
        self.stats = ParallelStats(dop=dop)

    @property
    def _counts_only(self) -> bool:
        return bool(self.aggregates) and all(
            spec.star and spec.name in ("count", "count_big")
            for spec in self.aggregates
        )

    def execute(self):
        return iter(self._compute())

    def execute_batch(self):
        yield from batches_from_rows(self._compute())

    def _compute(self) -> List:
        stats = self.stats = ParallelStats(dop=self.dop)
        group_fns = self.group_fns
        single = len(group_fns) == 1
        simple_index = (
            self.group_indexes[0]
            if self.group_indexes is not None and len(self.group_indexes) == 1
            else None
        )
        key_fn = group_fns[0] if single else None

        # Phase 1: scan the child batch-at-a-time (parallelisable in the
        # simulation; a row-mode child is bridged into chunks).
        start = time.perf_counter()
        batches = list(self.child.iter_batches())
        stats.scan_time = time.perf_counter() - start
        stats.rows_in = sum(len(batch) for batch in batches)
        stats.batches_in = len(batches)

        # Phase 2: hash-partition on the group key (Repartition Streams),
        # one batch at a time so the exchange hands workers whole batches.
        start = time.perf_counter()
        partitions: List[List] = [[] for _ in range(self.dop)]
        dop = self.dop
        if simple_index is not None:
            for batch in batches:
                for row in batch:
                    partitions[hash(row[simple_index]) % dop].append(row)
        elif single:
            for batch in batches:
                for row in batch:
                    partitions[hash(key_fn(row)) % dop].append(row)
        else:
            for batch in batches:
                for row in batch:
                    key = tuple(fn(row) for fn in group_fns)
                    partitions[hash(key) % dop].append(row)
        stats.partition_time = time.perf_counter() - start
        del batches

        # Phase 3: per-worker partial aggregation, individually timed.
        # Single-column COUNT(*) uses the batch Counter fast path, as the
        # serial HashAggregate does. In batch mode each partition is
        # aggregated column-wise through the batch accumulators; group
        # output order (first occurrence within each partition) matches
        # the row-mode dict exactly.
        use_counter = simple_index is not None and self._counts_only
        use_batch = (
            not use_counter
            and self.execution_mode == "batch"
            and all(spec.batch_capable for spec in self.aggregates)
        )
        partial_results: List = []
        for partition in partitions:
            start = time.perf_counter()
            if use_counter:
                from collections import Counter

                groups: Any = Counter(
                    row[simple_index] for row in partition
                )
            elif use_batch:
                if simple_index is not None:
                    keys = [row[simple_index] for row in partition]
                elif single:
                    keys = [key_fn(row) for row in partition]
                else:
                    keys = [
                        tuple(fn(row) for fn in group_fns)
                        for row in partition
                    ]
                accumulators = [
                    make_batch_accumulator(spec) for spec in self.aggregates
                ]
                for accumulator in accumulators:
                    accumulator.add_batch(keys, partition)
                groups = (dict.fromkeys(keys), accumulators)
            else:
                groups = {}
                specs = self.aggregates
                for row in partition:
                    key = key_fn(row) if single else tuple(
                        fn(row) for fn in group_fns
                    )
                    states = groups.get(key)
                    if states is None:
                        states = [spec.new_state() for spec in specs]
                        groups[key] = states
                    for state in states:
                        state.add(row)
            stats.partition_agg_times.append(time.perf_counter() - start)
            partial_results.append(groups)

        # Phase 4: gather. Hash partitioning means keys are disjoint
        # across partitions, so gathering is pure concatenation.
        start = time.perf_counter()
        output = []
        if use_counter:
            width = len(self.aggregates)
            for counts in partial_results:
                for key, count in counts.items():
                    output.append((key,) + (count,) * width)
        elif use_batch:
            for seen, accumulators in partial_results:
                for key in seen:
                    group_values = (key,) if single else key
                    output.append(
                        group_values
                        + tuple(acc.result(key) for acc in accumulators)
                    )
        else:
            for groups in partial_results:
                for key, states in groups.items():
                    group_values = (key,) if single else key
                    output.append(
                        group_values
                        + tuple(state.result() for state in states)
                    )
        stats.gather_time = time.perf_counter() - start
        stats.rows_out = len(output)
        return output

    def children(self):
        return (self.child,)

    def analyze_detail(self):
        stats = self.stats
        if not stats.partition_agg_times:
            return None
        worker_ms = sum(stats.partition_agg_times) * 1000.0
        return (
            f"workers={len(stats.partition_agg_times)}, "
            f"worker time={worker_ms:.3f}ms, "
            f"simulated wall={stats.simulated_wall * 1000.0:.3f}ms"
        )

    def explain_node(self):
        aggs = ", ".join(spec.describe() for spec in self.aggregates)
        label = (
            f"Parallelism (Gather Streams)\n"
            f"  -> Hash Match (Partial Aggregate: {aggs}) [DOP={self.dop}]\n"
            f"  -> Parallelism (Repartition Streams, hash on group key)"
        )
        return label, (self.child,)


class ParallelMergeUda(PhysicalOperator):
    """Partition-wise evaluation of one ordered UDA per group, where
    groups themselves are distributed across workers (the consensus
    plan's per-chromosome parallelism).

    Input must arrive ordered by (group key, within-group order). Each
    group is a task; tasks are timed and scheduled over ``dop`` simulated
    workers. Alignments overlapping partition borders are the reason the
    paper partitions by chromosome — a group never splits.
    """

    blocking = True

    def __init__(
        self,
        child: PhysicalOperator,
        group_fns: Sequence[RowFn],
        group_names: Sequence[str],
        spec: AggregateSpec,
        agg_name: str,
        dop: int = 4,
    ):
        super().__init__()
        self.child = child
        self.group_fns = list(group_fns)
        self.spec = spec
        self.columns = list(group_names) + [agg_name]
        self.dop = dop
        self.stats = ParallelStats(dop=dop)

    def execute(self):
        stats = self.stats = ParallelStats(dop=self.dop)
        group_fns = self.group_fns
        current_key = None
        state = None
        started = 0.0
        output = []

        scan_start = time.perf_counter()
        for row in self.child:
            stats.rows_in += 1
            key = tuple(fn(row) for fn in group_fns)
            if state is None or key != current_key:
                if state is not None:
                    output.append(current_key + (state.result(),))
                    stats.partition_agg_times.append(
                        time.perf_counter() - started
                    )
                current_key = key
                state = self.spec.new_state()
                started = time.perf_counter()
            state.add(row)
        if state is not None:
            output.append(current_key + (state.result(),))
            stats.partition_agg_times.append(time.perf_counter() - started)
        total = time.perf_counter() - scan_start
        # scan cost = everything not inside a group task
        stats.scan_time = max(total - sum(stats.partition_agg_times), 0.0)
        stats.rows_out = len(output)
        return iter(output)

    def children(self):
        return (self.child,)

    def analyze_detail(self):
        stats = self.stats
        if not stats.partition_agg_times:
            return None
        return (
            f"group tasks={len(stats.partition_agg_times)}, "
            f"task time={sum(stats.partition_agg_times) * 1000.0:.3f}ms, "
            f"simulated wall={stats.simulated_wall * 1000.0:.3f}ms"
        )

    def explain_node(self):
        return (
            f"Parallelism (Gather Streams)\n"
            f"  -> Stream Aggregate (UDA {self.spec.name}, per-group tasks)"
            f" [DOP={self.dop}]",
            (self.child,),
        )
