"""Parallel query execution: the exchange operator family.

SQL Server parallelises a hash aggregate by partitioning rows across
worker threads (Repartition Streams), running a *partial* aggregate per
worker, and gathering the results (Gather Streams) — the Figure 9 plan of
the paper. This module reproduces that plan shape over **real OS
processes**: the database owns a :class:`~repro.engine.workers.WorkerPool`
and the exchange operator ships partition sub-plans to it.

Three execution tiers, tried in order:

1. **Partitioned scan** — the child is a bare table scan whose storage
   engine splits itself into disjoint picklable slices (heap page ranges,
   columnstore segment ranges). Workers decode *and* aggregate their
   slice; the coordinator merges partial states in range order, which
   reproduces the serial hash aggregate's first-occurrence group order.
2. **Repartitioned rows** — the coordinator scans the child, hash-
   partitions rows on the group key, and ships each partition. A group
   never spans workers, so merge is concatenation and accumulation order
   matches serial execution bit for bit (this is the tier float SUM/AVG
   plans take — see :mod:`.exchange` for the reassociation argument).
3. **Simulated DOP** — the original single-core fallback: partitions are
   aggregated serially but each phase is timed and an LPT-scheduled
   multi-core wall clock is *modelled*::

       simulated_wall = (scan_time + partition_time) / dop
                      + LPT_schedule(per_partition_agg_times)
                      + gather_time

   The fallback engages when no pool is attached, ``dop=1``, the plan is
   not shippable, or the pool fails (spawn error, pickle error, timeout)
   — a parallel plan never surfaces a pool failure as a query error, and
   CI sandboxes with a broken ``multiprocessing`` keep passing.

:class:`ParallelStats` reports **both** clocks: ``simulated_wall`` from
the model above and ``measured_parallel_wall`` from the real pool run,
so benchmarks can print modelled and measured speedups side by side.
``lpt_makespan`` prices the same greedy schedule
:func:`~repro.engine.workers.lpt_assign` actually uses for task-to-worker
placement — the simulator's scheduler became the real scheduler.
"""

from __future__ import annotations

import time
import warnings
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from .. import tracing
from ..errors import ExecutionError
from ..workers import WorkerPool, WorkerPoolError
from .aggregates import AggregateSpec, make_batch_accumulator
from .base import PhysicalOperator
from .exchange import (
    build_scan_tasks,
    rebuild_shippable_specs,
    rows_offload_blocker,
    scan_offload_blocker,
)
from .operators import ColumnStoreScan
from .vector import batches_from_rows

RowFn = Callable[[Sequence[Any]], Any]

#: ParallelStats.mode values
MODE_SIMULATED = "simulated"
MODE_SCAN = "parallel scan"
MODE_ROWS = "parallel rows"
MODE_GROUPS = "parallel groups"


def lpt_makespan(task_times: Sequence[float], workers: int) -> float:
    """Makespan of the longest-processing-time-first schedule."""
    if workers <= 0:
        raise ExecutionError("workers must be positive")
    loads = [0.0] * workers
    for duration in sorted(task_times, reverse=True):
        loads[loads.index(min(loads))] += duration
    return max(loads) if loads else 0.0


@dataclass
class ParallelStats:
    """Phase timings captured by one exchange execution (seconds)."""

    dop: int = 1
    scan_time: float = 0.0
    partition_time: float = 0.0
    partition_agg_times: List[float] = field(default_factory=list)
    gather_time: float = 0.0
    rows_in: int = 0
    rows_out: int = 0
    #: batches consumed from the child (repartitioning is batch-granular)
    batches_in: int = 0
    #: which execution tier ran (``MODE_*`` constants)
    mode: str = MODE_SIMULATED
    #: why a worker-pool tier was skipped or abandoned ("" when none was)
    fallback_reason: str = ""
    #: real wall clock of the whole compute when workers ran (0 otherwise)
    measured_parallel_wall: float = 0.0
    #: per-worker ``(worker_id, rows, seconds)`` when workers ran
    worker_breakdown: List[Tuple[int, int, float]] = field(
        default_factory=list
    )
    #: pickled task payload / result bytes (transport cost, measured)
    bytes_shipped: int = 0
    bytes_returned: int = 0

    @property
    def serial_wall(self) -> float:
        """Single-core cost: the sum of every phase. In worker tiers the
        per-task times come from in-worker clocks, so this estimates what
        one core doing all the work would have paid."""
        return (
            self.scan_time
            + self.partition_time
            + sum(self.partition_agg_times)
            + self.gather_time
        )

    @property
    def measured_wall(self) -> float:
        """Deprecated alias of :attr:`serial_wall` (the old name read as
        a parallel measurement, which it never was — the real one is
        :attr:`measured_parallel_wall`)."""
        warnings.warn(
            "ParallelStats.measured_wall is deprecated; use serial_wall "
            "(or measured_parallel_wall for the real worker wall clock)",
            DeprecationWarning,
            stacklevel=2,
        )
        return self.serial_wall

    @property
    def simulated_wall(self) -> float:
        return (
            (self.scan_time + self.partition_time) / self.dop
            + lpt_makespan(self.partition_agg_times, self.dop)
            + self.gather_time
        )

    @property
    def simulated_speedup(self) -> float:
        simulated = self.simulated_wall
        serial = self.serial_wall
        if simulated <= 0 or serial <= 0:
            return 1.0
        return serial / simulated

    @property
    def measured_speedup(self) -> float:
        """Real speedup: serial cost over the measured parallel wall
        clock. 1.0 until a worker tier has actually run."""
        measured = self.measured_parallel_wall
        serial = self.serial_wall
        if measured <= 0 or serial <= 0:
            return 1.0
        return serial / measured


class ParallelHashAggregate(PhysicalOperator):
    """Repartition Streams → per-worker Hash Aggregate → Gather Streams.

    Output is identical to :class:`HashAggregate` — including group
    order — whichever tier executes; the difference is the partitioned
    execution and the :class:`ParallelStats` it records. Aggregates must
    be parallel-safe (mergeable partial states). Pass the database's
    ``pool`` to enable real worker-process execution; without one the
    operator runs the simulated tier (how unit tests drive it).

    The exchange eligibility this operator re-derives at runtime
    (:func:`.exchange.scan_offload_blocker` /
    :func:`.exchange.rows_offload_blocker`) is proven statically by
    the plan sanitizer before execution — rules
    ``PLAN-EXCHANGE-MERGE`` / ``-DOP`` / ``-FLOAT-SUM`` / ``-SILENT``
    in :mod:`repro.engine.verify.plan_sanitizer` — and this module is
    one of the fork-safety analyser's default targets.
    """

    blocking = True
    batch_capable = True

    def __init__(
        self,
        child: PhysicalOperator,
        group_fns: Sequence[RowFn],
        group_names: Sequence[str],
        aggregates: Sequence[AggregateSpec],
        agg_names: Sequence[str],
        dop: int = 4,
        group_indexes: Optional[Sequence[int]] = None,
        pool: Optional[WorkerPool] = None,
    ):
        super().__init__()
        if dop < 1:
            raise ExecutionError("degree of parallelism must be >= 1")
        for spec in aggregates:
            if not spec.parallel_safe:
                raise ExecutionError(
                    f"aggregate {spec.name!r} is not parallel-safe"
                )
        self.child = child
        self.group_fns = list(group_fns)
        self.aggregates = list(aggregates)
        self.columns = list(group_names) + list(agg_names)
        self.dop = dop
        self.group_indexes = tuple(group_indexes) if group_indexes else None
        self.pool = pool
        self.stats = ParallelStats(dop=dop)

    @property
    def _counts_only(self) -> bool:
        return bool(self.aggregates) and all(
            spec.star and spec.name in ("count", "count_big")
            for spec in self.aggregates
        )

    def execute(self):
        return iter(self._compute())

    def execute_batch(self):
        yield from batches_from_rows(self._compute())

    # -- tier dispatch -----------------------------------------------------------

    def _compute(self) -> List:
        stats = self.stats = ParallelStats(dop=self.dop)
        if self.dop > 1 and self.pool is not None:
            if not self.pool.available():
                stats.fallback_reason = (
                    self.pool.disabled_reason or "worker pool unavailable"
                )
            else:
                ship = rebuild_shippable_specs(self.aggregates)
                if ship is None:
                    stats.fallback_reason = (
                        "aggregate arguments are compiled expressions "
                        "(descriptors cannot ship to workers)"
                    )
                else:
                    scan_blocker = scan_offload_blocker(
                        self.child, self.aggregates, self.group_indexes
                    )
                    try:
                        if scan_blocker is None:
                            result = self._compute_offload_scan(stats, ship)
                            if result is not None:
                                return result
                            stats.fallback_reason = (
                                "table declined to partition"
                            )
                        rows_blocker = rows_offload_blocker(
                            self.aggregates, self.group_indexes
                        )
                        if rows_blocker is None:
                            return self._compute_offload_rows(stats, ship)
                        stats.fallback_reason = rows_blocker
                    except WorkerPoolError as exc:
                        stats = self.stats = ParallelStats(dop=self.dop)
                        stats.fallback_reason = str(exc)
        return self._compute_simulated(stats)

    def _group_key_specs(self):
        """(single, simple_index, key_fn) — the three key-path flavours."""
        group_fns = self.group_fns
        single = len(group_fns) == 1
        simple_index = (
            self.group_indexes[0]
            if self.group_indexes is not None and len(self.group_indexes) == 1
            else None
        )
        key_fn = group_fns[0] if single else None
        return single, simple_index, key_fn

    def _record_run(self, stats: ParallelStats, results) -> None:
        """Fold one pool run's accounting into the stats block."""
        run = self.pool.last_run
        if run is not None:
            stats.bytes_shipped += run.bytes_sent
            stats.bytes_returned += run.bytes_received
        per_worker: Dict[int, List[float]] = {}
        for result in results:
            acc = per_worker.setdefault(result.worker_id, [0, 0.0])
            acc[0] += result.rows
            acc[1] += result.elapsed
        stats.worker_breakdown = [
            (worker_id, int(rows), seconds)
            for worker_id, (rows, seconds) in sorted(per_worker.items())
        ]

    # -- tier 1: partitioned scan -------------------------------------------------

    def _compute_offload_scan(
        self, stats: ParallelStats, ship: List[AggregateSpec]
    ) -> Optional[List]:
        """Range-partition the child scan's storage across workers; None
        when the store declines (nothing stored, engine opt-out)."""
        wall_start = time.perf_counter()
        start = wall_start
        with tracing.span(
            "slice storage into partitions", category="exchange",
            wait_type="IO",
        ):
            built = build_scan_tasks(
                self.child, ship, self.group_indexes, self.dop
            )
        if built is None:
            return None
        tasks, weights = built
        stats.scan_time = time.perf_counter() - start
        stats.mode = MODE_SCAN
        if not tasks:
            # empty table: nothing to ship, nothing to aggregate
            stats.rows_out = 0
            stats.measured_parallel_wall = time.perf_counter() - wall_start
            self._bump_child_counters(0)
            return []
        with tracing.span(
            "parallel execute (scan tier)", category="exchange",
            tasks=len(tasks), dop=self.dop,
        ):
            results = self.pool.run(tasks, weights, workers=self.dop)
        stats.partition_agg_times = [r.elapsed for r in results]
        stats.batches_in = len(tasks)
        self._record_run(stats, results)

        # gather: merge partial states partition-by-partition *in range
        # order* — an insertion-ordered dict then replays the serial
        # hash aggregate's first-occurrence group order exactly.
        start = time.perf_counter()
        with tracing.span(
            "gather merge", category="exchange", wait_type="AGG_MERGE"
        ):
            merged: Dict[Any, List[Any]] = {}
            rows_in = 0
            worker_io: Dict[str, int] = {}
            for result in results:
                value = result.value
                rows_in += value["rows"]
                for name, amount in value["io"].items():
                    worker_io[name] = worker_io.get(name, 0) + amount
                for key, states in value["groups"].items():
                    mine = merged.get(key)
                    if mine is None:
                        merged[key] = states
                    else:
                        for state, other in zip(mine, states):
                            state.merge(other)
            single = len(self.group_fns) == 1
            output = []
            for key, states in merged.items():
                group_values = (key,) if single else key
                output.append(
                    group_values + tuple(state.result() for state in states)
                )
        stats.gather_time = time.perf_counter() - start
        stats.rows_in = rows_in
        stats.rows_out = len(output)
        stats.measured_parallel_wall = time.perf_counter() - wall_start
        self._bump_child_counters(rows_in, worker_io)
        return output

    def _bump_child_counters(
        self, rows: int, worker_io: Optional[Dict[str, int]] = None
    ) -> None:
        """The scan tier never drives the child operator, but EXPLAIN
        ANALYZE must still report the scan's actual rows exactly once —
        the workers *did* read them."""
        child = self.child
        child.loops += 1
        child.loop_rows.append(rows)
        child.rows_out += rows
        if worker_io and isinstance(child, ColumnStoreScan):
            child.segments_read += worker_io.get("segments_read", 0)
            child.segments_skipped += worker_io.get("segments_skipped", 0)
            store_io = child.table.store.io
            for name, amount in worker_io.items():
                store_io.incr(name, amount)

    # -- tier 2: repartitioned rows -----------------------------------------------

    def _compute_offload_rows(
        self, stats: ParallelStats, ship: List[AggregateSpec]
    ) -> List:
        """Coordinator scans and hash-partitions; workers aggregate."""
        wall_start = time.perf_counter()
        single, simple_index, key_fn = self._group_key_specs()
        group_fns = self.group_fns
        dop = self.dop

        start = wall_start
        with tracing.span(
            "scan child", category="exchange", wait_type="IO"
        ):
            batches = list(self.child.iter_batches())
        stats.scan_time = time.perf_counter() - start
        stats.rows_in = sum(len(batch) for batch in batches)
        stats.batches_in = len(batches)

        # hash-partition, recording global first-occurrence key order so
        # the gather can emit groups in the serial aggregate's order
        start = time.perf_counter()
        with tracing.span(
            "hash partition rows", category="exchange", dop=dop
        ):
            partitions: List[List] = [[] for _ in range(dop)]
            order: Dict[Any, None] = {}
            setorder = order.setdefault
            if simple_index is not None:
                for batch in batches:
                    for row in batch:
                        key = row[simple_index]
                        partitions[hash(key) % dop].append(row)
                        setorder(key)
            elif single:
                for batch in batches:
                    for row in batch:
                        key = key_fn(row)
                        partitions[hash(key) % dop].append(row)
                        setorder(key)
            else:
                for batch in batches:
                    for row in batch:
                        key = tuple(fn(row) for fn in group_fns)
                        partitions[hash(key) % dop].append(row)
                        setorder(key)
        stats.partition_time = time.perf_counter() - start
        del batches

        group_indexes = self.group_indexes
        tasks = []
        weights = []
        for partition in partitions:
            if not partition:
                continue
            tasks.append(
                (
                    "partial_agg",
                    {
                        "source": ("rows", {"rows": partition}),
                        "specs": ship,
                        "group_indexes": group_indexes,
                    },
                )
            )
            weights.append(float(len(partition)))
        del partitions

        merged: Dict[Any, List[Any]] = {}
        if tasks:
            with tracing.span(
                "parallel execute (rows tier)", category="exchange",
                tasks=len(tasks), dop=dop,
            ):
                results = self.pool.run(tasks, weights, workers=dop)
            stats.partition_agg_times = [r.elapsed for r in results]
            self._record_run(stats, results)
            # hash partitioning keeps keys disjoint across partitions
            for result in results:
                merged.update(result.value["groups"])
        stats.mode = MODE_ROWS

        start = time.perf_counter()
        with tracing.span(
            "gather merge", category="exchange", wait_type="AGG_MERGE"
        ):
            output = []
            for key in order:
                states = merged[key]
                group_values = (key,) if single else key
                output.append(
                    group_values + tuple(state.result() for state in states)
                )
        stats.gather_time = time.perf_counter() - start
        stats.rows_out = len(output)
        stats.measured_parallel_wall = time.perf_counter() - wall_start
        return output

    # -- tier 3: simulated DOP ----------------------------------------------------

    def _compute_simulated(self, stats: ParallelStats) -> List:
        single, simple_index, key_fn = self._group_key_specs()
        group_fns = self.group_fns

        # Phase 1: scan the child batch-at-a-time (parallelisable in the
        # simulation; a row-mode child is bridged into chunks).
        start = time.perf_counter()
        batches = list(self.child.iter_batches())
        stats.scan_time = time.perf_counter() - start
        stats.rows_in = sum(len(batch) for batch in batches)
        stats.batches_in = len(batches)

        # Phase 2: hash-partition on the group key (Repartition Streams),
        # one batch at a time so the exchange hands workers whole batches.
        # Global first-occurrence key order is recorded as partitioning
        # goes, so the gather emits the serial aggregate's group order.
        start = time.perf_counter()
        partitions: List[List] = [[] for _ in range(self.dop)]
        order: Dict[Any, None] = {}
        setorder = order.setdefault
        dop = self.dop
        if simple_index is not None:
            for batch in batches:
                for row in batch:
                    key = row[simple_index]
                    partitions[hash(key) % dop].append(row)
                    setorder(key)
        elif single:
            for batch in batches:
                for row in batch:
                    key = key_fn(row)
                    partitions[hash(key) % dop].append(row)
                    setorder(key)
        else:
            for batch in batches:
                for row in batch:
                    key = tuple(fn(row) for fn in group_fns)
                    partitions[hash(key) % dop].append(row)
                    setorder(key)
        stats.partition_time = time.perf_counter() - start
        del batches

        # Phase 3: per-worker partial aggregation, individually timed.
        # Single-column COUNT(*) uses the batch Counter fast path, as the
        # serial HashAggregate does. In batch mode each partition is
        # aggregated column-wise through the batch accumulators.
        use_counter = simple_index is not None and self._counts_only
        use_batch = (
            not use_counter
            and self.execution_mode == "batch"
            and all(spec.batch_capable for spec in self.aggregates)
        )
        partial_results: List = []
        for partition in partitions:
            start = time.perf_counter()
            if use_counter:
                from collections import Counter

                groups: Any = Counter(
                    row[simple_index] for row in partition
                )
            elif use_batch:
                if simple_index is not None:
                    keys = [row[simple_index] for row in partition]
                elif single:
                    keys = [key_fn(row) for row in partition]
                else:
                    keys = [
                        tuple(fn(row) for fn in group_fns)
                        for row in partition
                    ]
                accumulators = [
                    make_batch_accumulator(spec) for spec in self.aggregates
                ]
                for accumulator in accumulators:
                    accumulator.add_batch(keys, partition)
                groups = (dict.fromkeys(keys), accumulators)
            else:
                groups = {}
                specs = self.aggregates
                for row in partition:
                    key = key_fn(row) if single else tuple(
                        fn(row) for fn in group_fns
                    )
                    states = groups.get(key)
                    if states is None:
                        states = [spec.new_state() for spec in specs]
                        groups[key] = states
                    for state in states:
                        state.add(row)
            stats.partition_agg_times.append(time.perf_counter() - start)
            partial_results.append(groups)

        # Phase 4: gather. Hash partitioning means keys are disjoint
        # across partitions, so merging is a dict union; emission follows
        # the recorded global first-occurrence order.
        start = time.perf_counter()
        output = []
        if use_counter:
            width = len(self.aggregates)
            counts: Dict[Any, int] = {}
            for partial in partial_results:
                counts.update(partial)
            for key in order:
                output.append((key,) + (counts[key],) * width)
        elif use_batch:
            owners: Dict[Any, Any] = {}
            for seen, accumulators in partial_results:
                for key in seen:
                    owners[key] = accumulators
            for key in order:
                accumulators = owners[key]
                group_values = (key,) if single else key
                output.append(
                    group_values
                    + tuple(acc.result(key) for acc in accumulators)
                )
        else:
            merged: Dict[Any, List[Any]] = {}
            for groups in partial_results:
                merged.update(groups)
            for key in order:
                states = merged[key]
                group_values = (key,) if single else key
                output.append(
                    group_values
                    + tuple(state.result() for state in states)
                )
        stats.gather_time = time.perf_counter() - start
        stats.rows_out = len(output)
        return output

    # -- plumbing ----------------------------------------------------------------

    def children(self):
        return (self.child,)

    def analyze_detail(self):
        stats = self.stats
        if not stats.partition_agg_times and not stats.fallback_reason:
            return None
        worker_ms = sum(stats.partition_agg_times) * 1000.0
        parts = [
            f"workers={len(stats.partition_agg_times)}",
            f"worker time={worker_ms:.3f}ms",
            f"simulated wall={stats.simulated_wall * 1000.0:.3f}ms",
        ]
        if stats.measured_parallel_wall > 0:
            parts.append(
                f"measured wall="
                f"{stats.measured_parallel_wall * 1000.0:.3f}ms"
            )
            parts.append(f"mode={stats.mode}")
            for worker_id, rows, seconds in stats.worker_breakdown:
                parts.append(
                    f"w{worker_id}={rows}r/{seconds * 1000.0:.3f}ms"
                )
        if stats.fallback_reason:
            parts.append(f"serial fallback: {stats.fallback_reason}")
        return ", ".join(parts)

    def explain_node(self):
        aggs = ", ".join(spec.describe() for spec in self.aggregates)
        label = (
            f"Parallelism (Gather Streams)\n"
            f"  -> Hash Match (Partial Aggregate: {aggs}) [DOP={self.dop}]\n"
            f"  -> Parallelism (Repartition Streams, hash on group key)"
        )
        return label, (self.child,)


class ParallelMergeUda(PhysicalOperator):
    """Partition-wise evaluation of one ordered UDA per group, where
    groups themselves are distributed across workers (the consensus
    plan's per-chromosome parallelism).

    Input must arrive ordered by (group key, within-group order). Each
    group is a task; with a pool and a shippable, parallel-safe UDA the
    tasks execute on worker processes (LPT-assigned by group size), and
    otherwise serially with per-task timing for the simulated wall
    clock. Alignments overlapping partition borders are the reason the
    paper partitions by chromosome — a group never splits.
    """

    blocking = True

    def __init__(
        self,
        child: PhysicalOperator,
        group_fns: Sequence[RowFn],
        group_names: Sequence[str],
        spec: AggregateSpec,
        agg_name: str,
        dop: int = 4,
        pool: Optional[WorkerPool] = None,
    ):
        super().__init__()
        self.child = child
        self.group_fns = list(group_fns)
        self.spec = spec
        self.columns = list(group_names) + [agg_name]
        self.dop = dop
        self.pool = pool
        self.stats = ParallelStats(dop=dop)

    def execute(self):
        stats = self.stats = ParallelStats(dop=self.dop)
        group_fns = self.group_fns
        wall_start = time.perf_counter()

        # buffer the ordered input into (key, rows) group runs
        groups: List[Tuple[Tuple[Any, ...], List[Any]]] = []
        current_key = None
        current_rows: Optional[List[Any]] = None
        for row in self.child:
            stats.rows_in += 1
            key = tuple(fn(row) for fn in group_fns)
            if current_rows is None or key != current_key:
                current_key = key
                current_rows = []
                groups.append((key, current_rows))
            current_rows.append(row)
        stats.scan_time = time.perf_counter() - wall_start

        output = self._run_groups(stats, groups, wall_start)
        stats.rows_out = len(output)
        return iter(output)

    def _run_groups(self, stats, groups, wall_start):
        if self.dop > 1 and self.pool is not None and groups:
            ship = (
                rebuild_shippable_specs([self.spec])
                if self.pool.available()
                else None
            )
            if ship is not None:
                try:
                    return self._run_groups_offload(
                        stats, groups, ship[0], wall_start
                    )
                except WorkerPoolError as exc:
                    stats.fallback_reason = str(exc)
                    stats.partition_agg_times = []
            else:
                stats.fallback_reason = (
                    self.pool.disabled_reason
                    or "UDA cannot ship to workers"
                )
        output = []
        for key, rows in groups:
            started = time.perf_counter()
            state = self.spec.new_state()
            for row in rows:
                state.add(row)
            output.append(key + (state.result(),))
            stats.partition_agg_times.append(time.perf_counter() - started)
        return output

    def _run_groups_offload(self, stats, groups, ship_spec, wall_start):
        tasks = [
            ("uda_group", {"spec": ship_spec, "rows": rows})
            for _key, rows in groups
        ]
        weights = [float(len(rows)) for _key, rows in groups]
        with tracing.span(
            "parallel execute (uda groups)", category="exchange",
            tasks=len(tasks), dop=self.dop,
        ):
            results = self.pool.run(tasks, weights, workers=self.dop)
        stats.partition_agg_times = [r.elapsed for r in results]
        stats.mode = MODE_GROUPS
        run = self.pool.last_run
        if run is not None:
            stats.bytes_shipped += run.bytes_sent
            stats.bytes_returned += run.bytes_received
        output = [
            key + (result.value["result"],)
            for (key, _rows), result in zip(groups, results)
        ]
        stats.measured_parallel_wall = time.perf_counter() - wall_start
        return output

    def children(self):
        return (self.child,)

    def analyze_detail(self):
        stats = self.stats
        if not stats.partition_agg_times:
            return None
        parts = [
            f"group tasks={len(stats.partition_agg_times)}",
            f"task time={sum(stats.partition_agg_times) * 1000.0:.3f}ms",
            f"simulated wall={stats.simulated_wall * 1000.0:.3f}ms",
        ]
        if stats.measured_parallel_wall > 0:
            parts.append(
                f"measured wall="
                f"{stats.measured_parallel_wall * 1000.0:.3f}ms"
            )
            parts.append(f"mode={stats.mode}")
        if stats.fallback_reason:
            parts.append(f"serial fallback: {stats.fallback_reason}")
        return ", ".join(parts)

    def explain_node(self):
        return (
            f"Parallelism (Gather Streams)\n"
            f"  -> Stream Aggregate (UDA {self.spec.name}, per-group tasks)"
            f" [DOP={self.dop}]",
            (self.child,),
        )
