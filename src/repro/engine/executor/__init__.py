"""Volcano-style physical operators."""

from .aggregates import AggregateSpec, AggregateState
from .apply import CrossApply, TvfScan
from .base import MaterializedResult, PhysicalOperator
from .joins import HashJoin, MergeJoin, NestedLoopJoin
from .operators import (
    ClusteredIndexScan,
    ClusteredIndexSeek,
    Distinct,
    Filter,
    HashAggregate,
    Project,
    RowNumberWindow,
    SecondaryIndexSeek,
    Sort,
    StreamAggregate,
    TableScan,
    Top,
)
from .parallel import (
    ParallelHashAggregate,
    ParallelMergeUda,
    ParallelStats,
    lpt_makespan,
)

__all__ = [
    "AggregateSpec",
    "AggregateState",
    "ClusteredIndexScan",
    "ClusteredIndexSeek",
    "CrossApply",
    "Distinct",
    "Filter",
    "HashAggregate",
    "HashJoin",
    "MaterializedResult",
    "MergeJoin",
    "NestedLoopJoin",
    "ParallelHashAggregate",
    "ParallelMergeUda",
    "ParallelStats",
    "PhysicalOperator",
    "Project",
    "RowNumberWindow",
    "SecondaryIndexSeek",
    "Sort",
    "StreamAggregate",
    "TableScan",
    "Top",
    "TvfScan",
    "lpt_makespan",
]
