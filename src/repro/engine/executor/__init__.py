"""Volcano-style physical operators."""

from .aggregates import AggregateSpec, AggregateState
from .apply import CrossApply, TvfScan
from .base import MaterializedResult, PhysicalOperator
from .joins import HashJoin, MergeJoin, NestedLoopJoin
from .operators import (
    ClusteredIndexScan,
    ClusteredIndexSeek,
    ColumnStoreScan,
    Distinct,
    EncodedAggregate,
    Filter,
    FusedFilterProject,
    HashAggregate,
    Project,
    RowNumberWindow,
    SecondaryIndexSeek,
    Sort,
    StreamAggregate,
    TableScan,
    Top,
)
from .exchange import (
    rebuild_shippable_specs,
    rows_offload_blocker,
    scan_offload_blocker,
)
from .parallel import (
    ParallelHashAggregate,
    ParallelMergeUda,
    ParallelStats,
    lpt_makespan,
)
from .vector import (
    DEFAULT_BATCH_SIZE,
    RowBatch,
    batches_from_rows,
    collect_rows,
)

__all__ = [
    "AggregateSpec",
    "AggregateState",
    "ClusteredIndexScan",
    "ClusteredIndexSeek",
    "ColumnStoreScan",
    "CrossApply",
    "DEFAULT_BATCH_SIZE",
    "Distinct",
    "EncodedAggregate",
    "Filter",
    "FusedFilterProject",
    "HashAggregate",
    "HashJoin",
    "MaterializedResult",
    "MergeJoin",
    "NestedLoopJoin",
    "ParallelHashAggregate",
    "ParallelMergeUda",
    "ParallelStats",
    "PhysicalOperator",
    "Project",
    "RowBatch",
    "RowNumberWindow",
    "SecondaryIndexSeek",
    "Sort",
    "StreamAggregate",
    "TableScan",
    "Top",
    "TvfScan",
    "batches_from_rows",
    "collect_rows",
    "lpt_makespan",
    "rebuild_shippable_specs",
    "rows_offload_blocker",
    "scan_offload_blocker",
]
