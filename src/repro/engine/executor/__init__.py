"""Volcano-style physical operators."""

from .aggregates import AggregateSpec, AggregateState
from .apply import CrossApply, TvfScan
from .base import MaterializedResult, PhysicalOperator
from .joins import HashJoin, MergeJoin, NestedLoopJoin
from .operators import (
    ClusteredIndexScan,
    ClusteredIndexSeek,
    Distinct,
    Filter,
    FusedFilterProject,
    HashAggregate,
    Project,
    RowNumberWindow,
    SecondaryIndexSeek,
    Sort,
    StreamAggregate,
    TableScan,
    Top,
)
from .parallel import (
    ParallelHashAggregate,
    ParallelMergeUda,
    ParallelStats,
    lpt_makespan,
)
from .vector import (
    DEFAULT_BATCH_SIZE,
    RowBatch,
    batches_from_rows,
    collect_rows,
)

__all__ = [
    "AggregateSpec",
    "AggregateState",
    "ClusteredIndexScan",
    "ClusteredIndexSeek",
    "CrossApply",
    "DEFAULT_BATCH_SIZE",
    "Distinct",
    "Filter",
    "FusedFilterProject",
    "HashAggregate",
    "HashJoin",
    "MaterializedResult",
    "MergeJoin",
    "NestedLoopJoin",
    "ParallelHashAggregate",
    "ParallelMergeUda",
    "ParallelStats",
    "PhysicalOperator",
    "Project",
    "RowBatch",
    "RowNumberWindow",
    "SecondaryIndexSeek",
    "Sort",
    "StreamAggregate",
    "TableScan",
    "Top",
    "TvfScan",
    "batches_from_rows",
    "collect_rows",
    "lpt_makespan",
]
