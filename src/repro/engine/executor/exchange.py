"""Exchange offload planning: can this parallel plan run on real cores?

The exchange operator family (:mod:`.parallel`) executes partition
sub-plans on the database's :class:`~repro.engine.workers.WorkerPool`
when the plan is *shippable* — expressible as picklable descriptors a
worker process can evaluate without the coordinator's compiled closures:

- **group keys** must be plain input columns (``group_indexes``);
- **aggregates** must be built-ins addressed by argument position, or
  picklable UDAs with plain-column arguments — their accessors are
  rebuilt worker-side as ``operator.itemgetter``;
- **partitioned scans** additionally need a child that is a bare table
  scan whose storage engine can split itself into disjoint picklable
  slices (heap page ranges / columnstore segment ranges), and — because
  range partitioning lets a group span partitions — SUM/AVG arguments
  of *exact* (integer) type, so coordinator-side merge reassociates
  nothing that floating point would notice. Float SUM/AVG plans still
  parallelise: they take the hash-partitioned row-shipping path, where
  a group never spans workers and accumulation order matches serial
  execution bit for bit.

The same eligibility logic feeds the planner's EXPLAIN ``note:`` lines,
so a plan that will fall back to the coordinator says why at plan time.
"""

from __future__ import annotations

import pickle
from operator import itemgetter
from typing import Any, Dict, List, Optional, Sequence, Tuple

from ..types import UDT
from .aggregates import AggregateSpec
from .operators import ColumnStoreScan, TableScan

#: aggregates whose merge is order-insensitive and exact for any input
#: type (counts are integers, MIN/MAX pick, sets union)
ORDER_SAFE_AGGREGATES = ("count", "count_big", "min", "max")
#: aggregates exact only over integer arguments when partial sums from
#: *range* partitions are re-added at merge time (the float-reassociation
#: gate the plan sanitizer re-proves independently, rule
#: PLAN-EXCHANGE-FLOAT-SUM)
SUM_LIKE_AGGREGATES = ("sum", "avg")

# historical private names, kept for callers that grew up with them
_ORDER_SAFE = ORDER_SAFE_AGGREGATES
_SUM_LIKE = SUM_LIKE_AGGREGATES


def rebuild_shippable_specs(
    specs: Sequence[AggregateSpec],
) -> Optional[List[AggregateSpec]]:
    """Clone aggregate specs with ``itemgetter`` argument accessors so
    they (and the states they build) survive pickling. None when any
    spec cannot ship."""
    shipped: List[AggregateSpec] = []
    for spec in specs:
        if not spec.star and spec.arg_index is None:
            return None  # expression argument: compiled closure only
        if spec.uda_class is not None:
            if not spec.parallel_safe:
                return None
            try:
                pickle.dumps(spec.uda_class)
            except Exception:  # noqa: BLE001 - locally scoped class
                return None
        arg_fns = (
            [] if spec.star else [itemgetter(spec.arg_index)]
        )
        shipped.append(
            AggregateSpec(
                spec.name,
                arg_fns,
                star=spec.star,
                distinct=spec.distinct,
                uda_class=spec.uda_class,
                arg_index=spec.arg_index,
            )
        )
    return shipped


def scan_schema_position(scan, output_index: int) -> int:
    """Map a scan output position back to the table schema position.

    Public because the plan sanitizer cross-checks this mapping against
    an independent by-name resolution (a corrupted position map is how
    the float-reassociation gate gets defeated)."""
    if isinstance(scan, ColumnStoreScan):
        return scan.out_positions[output_index]
    projection = scan.projection
    return projection[output_index] if projection is not None else output_index


_scan_schema_position = scan_schema_position


def offloadable_scan(child) -> Optional[Any]:
    """The child scan when it is a bare partitionable table scan."""
    if isinstance(child, (TableScan, ColumnStoreScan)):
        store = getattr(child.table, "store", None)
        if store is not None and hasattr(store, "partition_payloads"):
            return child
    return None


#: back-compat alias, kept for external callers of the old private name
_offloadable_scan = offloadable_scan


def _has_udt_columns(schema) -> bool:
    return any(c.sql_type.kind == UDT for c in schema.columns)


def scan_offload_blocker(
    child,
    specs: Sequence[AggregateSpec],
    group_indexes: Optional[Sequence[int]],
) -> Optional[str]:
    """Why the partitioned-scan offload cannot run, or None when it can.

    Checked by the operator before building payloads and by the planner
    when phrasing EXPLAIN notes."""
    if group_indexes is None:
        return "group keys are computed expressions"
    scan = offloadable_scan(child)
    if scan is None:
        return "input is not a partitionable table scan"
    if _has_udt_columns(scan.table.schema):
        return "table has UDT columns (codecs do not ship)"
    for spec in specs:
        if not spec.star and spec.arg_index is None:
            return f"{spec.name.upper()} argument is a computed expression"
        if spec.uda_class is not None:
            continue  # parallel-safe UDAs merge by contract
        if spec.name in _SUM_LIKE and not spec.distinct:
            schema_pos = _scan_schema_position(scan, spec.arg_index)
            sql_type = scan.table.schema.columns[schema_pos].sql_type
            if not sql_type.is_integer:
                return (
                    f"{spec.name.upper()} over a non-integer column "
                    "(range partials would reassociate floats)"
                )
    return None


def rows_offload_blocker(
    specs: Sequence[AggregateSpec],
    group_indexes: Optional[Sequence[int]],
) -> Optional[str]:
    """Why the hash-partitioned row-shipping offload cannot run.

    Hash partitioning keeps every group on one worker, so accumulation
    order matches serial execution for any type — only descriptor
    expressibility matters here."""
    if group_indexes is None:
        return "group keys are computed expressions"
    for spec in specs:
        if not spec.star and spec.arg_index is None:
            return f"{spec.name.upper()} argument is a computed expression"
    return None


def build_scan_tasks(
    child,
    ship_specs: Sequence[AggregateSpec],
    group_indexes: Sequence[int],
    dop: int,
) -> Optional[Tuple[List[Tuple[str, Dict[str, Any]]], List[float]]]:
    """Partition the child scan's storage into ``dop`` disjoint slices
    and wrap each as a ``partial_agg`` worker task. None when the store
    declines to partition (nothing stored yet, or engine opt-out)."""
    scan = offloadable_scan(child)
    if scan is None:
        return None
    store = scan.table.store
    slices = store.partition_payloads(dop)
    if slices is None:
        return None
    if isinstance(scan, ColumnStoreScan):
        kind = "column"
        extra: Dict[str, Any] = {
            "predicates": list(scan.predicates),
            "out_positions": tuple(scan.out_positions),
        }
    else:
        kind = "heap"
        extra = {"out_positions": scan.projection}
    tasks: List[Tuple[str, Dict[str, Any]]] = []
    weights: List[float] = []
    for piece in slices:
        source = dict(piece)
        source.update(extra)
        tasks.append(
            (
                "partial_agg",
                {
                    "source": (kind, source),
                    "specs": list(ship_specs),
                    "group_indexes": tuple(group_indexes),
                },
            )
        )
        weights.append(float(piece.get("rows", 1)))
    return tasks, weights
