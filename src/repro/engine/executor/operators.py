"""Core physical operators: scans, filter, project, sort, top, window,
distinct, and the aggregation operators (stream and hash).

Naming follows SQL Server showplan operators where a close analogue
exists (Table Scan, Clustered Index Scan/Seek, Stream Aggregate, Hash
Match Aggregate, Sort, Top, Segment/Sequence Project for ROW_NUMBER).
"""

from __future__ import annotations

from operator import itemgetter
from typing import Any, Callable, Iterator, List, Optional, Sequence, Tuple

from ..errors import ExecutionError
from ..storage.columnstore import ENC_RLE
from ..table import Table
from .aggregates import AggregateSpec, make_batch_accumulator
from .base import PhysicalOperator
from . import vector
from .vector import (
    RowBatch,
    batches_from_rows,
    make_batch_projector,
    make_row_projector,
)

RowFn = Callable[[Sequence[Any]], Any]
#: a batch-compiled expression: batch -> list of per-row values
BatchFn = Callable[[Sequence[Sequence[Any]]], List[Any]]


def _qualify(alias: Optional[str], names: Sequence[str]) -> List[str]:
    if alias:
        return [f"{alias}.{n}" for n in names]
    return list(names)


def _resolve_key(bound: Optional[Tuple[Any, ...]]) -> Optional[Tuple[Any, ...]]:
    """Seek bounds may carry plan-cache parameter slots (duck-typed via
    ``is_parameter``); resolve them to the current values at execute time
    so a cached seek follows the parameters, not the values it was
    compiled under."""
    if bound is None or not any(
        getattr(v, "is_parameter", False) for v in bound
    ):
        return bound
    return tuple(
        v.value if getattr(v, "is_parameter", False) else v for v in bound
    )


class TableScan(PhysicalOperator):
    """Heap scan in physical order.

    ``projection`` (a sequence of schema column names) narrows the scan
    output to those columns — projection pruning's way of avoiding the
    materialisation of never-referenced columns.
    """

    def __init__(
        self,
        table: Table,
        alias: Optional[str] = None,
        projection: Optional[Sequence[str]] = None,
    ):
        super().__init__()
        self.table = table
        self.alias = alias or table.schema.name
        names = list(table.schema.column_names)
        if projection is not None:
            self.projection: Optional[Tuple[int, ...]] = tuple(
                table.schema.column_index(c) for c in projection
            )
            names = [names[i] for i in self.projection]
        else:
            self.projection = None
        self.columns = _qualify(self.alias, names)
        # virtual tables (system views) expose scan() only
        self.batch_capable = hasattr(table, "scan_batches")

    def execute(self):
        if self.projection is None:
            return self.table.scan()
        project = make_row_projector(self.projection)
        return map(project, self.table.scan())

    def execute_batch(self):
        # page-aligned batches straight from the per-page row cache;
        # under-filled pages (row-at-a-time loads seal a page per
        # statement) are coalesced up to the target batch size so batch
        # mode never degenerates to one-row batches
        project = (
            make_batch_projector(self.projection)
            if self.projection is not None
            else RowBatch
        )
        target = vector.DEFAULT_BATCH_SIZE
        pending: List[Tuple[Any, ...]] = []
        for batch in self.table.scan_batches():
            if not pending and len(batch) >= target:
                yield project(batch)
                continue
            pending.extend(batch)
            if len(pending) >= target:
                yield project(pending)
                pending = []
        if pending:
            yield project(pending)

    def explain_node(self):
        parts = []
        store = getattr(self.table, "store", None)
        if store is not None:
            parts.append(f"storage={store.engine_name}")
        if self.projection is not None:
            names = [
                self.table.schema.column_names[i] for i in self.projection
            ]
            parts.append(f"cols: {', '.join(names)}")
        suffix = f" ({'; '.join(parts)})" if parts else ""
        return f"Table Scan [{self.table.schema.name}]{suffix}", ()


class _SegmentView:
    """One sealed segment's surviving rows, still encoded.

    ``positions`` is None when every row survives (no tombstones, no
    predicate rejected anything) — the case where whole-segment encoded
    shortcuts (``runs``) are valid.
    """

    __slots__ = ("segment", "positions", "io", "count")

    def __init__(self, segment, positions, io):
        self.segment = segment
        self.positions = positions
        self.io = io
        self.count = segment.rows if positions is None else len(positions)

    def gather(self, schema_index: int) -> List[Any]:
        """Values of the surviving rows for one schema column (late
        materialization: nothing else is ever decoded)."""
        return self.segment.gather(schema_index, self.positions, self.io)

    def runs(self, schema_index: int):
        """``(value, run_length)`` pairs when the column is RLE-encoded
        and the whole segment survives; None otherwise."""
        if self.positions is not None:
            return None
        column = self.segment.columns[schema_index]
        if column.encoding != ENC_RLE:
            return None
        return column.payload


class _TailView:
    """The open (row-wise) tail, already filtered, presented through the
    same interface as a sealed segment view."""

    __slots__ = ("rows", "count")

    def __init__(self, rows):
        self.rows = rows
        self.count = len(rows)

    def gather(self, schema_index: int) -> List[Any]:
        return [row[schema_index] for row in self.rows]

    def runs(self, schema_index: int):
        return None


class ColumnStoreScan(PhysicalOperator):
    """Columnstore Index Scan: segment-at-a-time scan over a column table.

    Pushed predicates are evaluated in three escalating stages:

    1. **zone maps** — segments whose min/max range cannot satisfy every
       predicate are skipped without decoding anything;
    2. **encoded selection** — surviving segments evaluate the first
       predicate on the encoded vector (once per dictionary entry / once
       per RLE run), later predicates only on prior survivors;
    3. **late materialization** — only the projected columns are
       decoded, and only at the surviving positions.

    Per-scan ``segments_read`` / ``segments_skipped`` tallies feed
    EXPLAIN ANALYZE; the same counts go to the store's IO counters for
    ``sys_dm_io_stats`` / SET STATISTICS IO.
    """

    batch_capable = True

    def __init__(
        self,
        table: Table,
        alias: Optional[str] = None,
        projection: Optional[Sequence[str]] = None,
        predicates: Sequence[Any] = (),
    ):
        super().__init__()
        self.table = table
        self.store = table.store
        self.alias = alias or table.schema.name
        names = list(table.schema.column_names)
        if projection is not None:
            self.projection: Optional[Tuple[int, ...]] = tuple(
                table.schema.column_index(c) for c in projection
            )
            names = [names[i] for i in self.projection]
            self.out_positions: Tuple[int, ...] = self.projection
        else:
            self.projection = None
            self.out_positions = tuple(range(len(names)))
        self.columns = _qualify(self.alias, names)
        self.predicates = list(predicates)
        self.segments_read = 0
        self.segments_skipped = 0

    def schema_index(self, output_index: int) -> int:
        """Map an output column position back to its schema position."""
        return self.out_positions[output_index]

    def set_predicates(self, predicates) -> None:
        self.predicates = list(predicates)

    # -- segment-level iteration ----------------------------------------------

    def _views(self):
        store = self.store
        io = store.io
        io.incr("scans")
        predicates = self.predicates
        for segment in store.segments:
            admitted = True
            for pred in predicates:
                if not segment.columns[pred.col_index].zone_admits(pred):
                    admitted = False
                    break
            if not admitted:
                self.segments_skipped += 1
                io.incr("segments_skipped")
                continue
            self.segments_read += 1
            io.incr("segments_read")
            selection = segment.selection(predicates, io)
            if selection is not None and not selection:
                continue
            yield _SegmentView(segment, selection, io)
        tail = store.tail_rows()
        if tail:
            # the open tail is row-wise and unindexed: always one read
            self.segments_read += 1
            io.incr("segments_read")
            if predicates:
                matchers = [(p.col_index, p.matcher()) for p in predicates]
                tail = [
                    row
                    for row in tail
                    if all(match(row[i]) for i, match in matchers)
                ]
            if tail:
                yield _TailView(tail)

    def iter_segment_views(self):
        """Accounted segment-level iteration for encoded consumers
        (:class:`EncodedAggregate`): same rows_out / loops bookkeeping as
        ``iter_batches`` without ever materialising row tuples."""
        loop_index = self.loops
        self.loops += 1
        self.loop_rows.append(0)
        emitted = 0
        try:
            for view in self._views():
                emitted += view.count
                self.batches_out += 1
                yield view
        finally:
            self.rows_out += emitted
            self.loop_rows[loop_index] = emitted

    # -- row / batch iteration -------------------------------------------------

    def _view_rows(self, view) -> List[Tuple[Any, ...]]:
        out_positions = self.out_positions
        if not out_positions:
            return [()] * view.count
        vectors = [view.gather(i) for i in out_positions]
        return list(zip(*vectors))

    def execute(self):
        for view in self._views():
            yield from self._view_rows(view)

    def execute_batch(self):
        # one batch per surviving segment; runty survivors (heavy
        # pruning, small tails) are coalesced up to the target size so
        # batch mode never degenerates to droplet batches
        target = vector.DEFAULT_BATCH_SIZE
        io = self.store.io
        pending: List[Tuple[Any, ...]] = []
        for view in self._views():
            rows = self._view_rows(view)
            if not pending and len(rows) >= target:
                io.incr("batch_reads")
                yield RowBatch(rows)
                continue
            pending.extend(rows)
            if len(pending) >= target:
                io.incr("batch_reads")
                yield RowBatch(pending)
                pending = []
        if pending:
            io.incr("batch_reads")
            yield RowBatch(pending)

    def analyze_detail(self):
        return (
            f"segments={self.segments_read} "
            f"skipped={self.segments_skipped}"
        )

    def explain_node(self):
        parts = ["storage=column"]
        if self.projection is not None:
            names = [
                self.table.schema.column_names[i] for i in self.projection
            ]
            parts.append(f"cols: {', '.join(names)}")
        if self.predicates:
            labels = " AND ".join(
                pred.label or pred.op for pred in self.predicates
            )
            parts.append(f"pushed: {labels}")
        return (
            f"Columnstore Index Scan [{self.table.schema.name}] "
            f"({'; '.join(parts)})",
            (),
        )


class ClusteredIndexScan(PhysicalOperator):
    """Full scan in clustered-key order (feeds merge joins / stream aggs).

    Supports the same ``projection`` narrowing as :class:`TableScan`;
    the advertised ordering is remapped to output positions and stops at
    the first clustered-key column the projection drops.
    """

    def __init__(
        self,
        table: Table,
        alias: Optional[str] = None,
        projection: Optional[Sequence[str]] = None,
    ):
        super().__init__()
        self.table = table
        self.alias = alias or table.schema.name
        names = list(table.schema.column_names)
        if projection is not None:
            self.projection: Optional[Tuple[int, ...]] = tuple(
                table.schema.column_index(c) for c in projection
            )
            names = [names[i] for i in self.projection]
            output_position = {
                schema_pos: i for i, schema_pos in enumerate(self.projection)
            }
            ordering = []
            for key_pos in table.schema.key_indexes:
                if key_pos not in output_position:
                    break
                ordering.append(output_position[key_pos])
            self.ordering = tuple(ordering)
        else:
            self.projection = None
            self.ordering = tuple(table.schema.key_indexes)
        self.columns = _qualify(self.alias, names)
        self.batch_capable = hasattr(table, "ordered_scan")

    def execute(self):
        if self.projection is None:
            return self.table.ordered_scan()
        project = make_row_projector(self.projection)
        return map(project, self.table.ordered_scan())

    def execute_batch(self):
        # key order comes from the B+tree (one rid fetch per row), so
        # batches are chunked rather than page-aligned here
        batches = batches_from_rows(self.table.ordered_scan())
        if self.projection is None:
            yield from batches
        else:
            project = make_batch_projector(self.projection)
            for batch in batches:
                yield project(batch)

    def explain_node(self):
        key = ", ".join(self.table.schema.primary_key)
        parts = [f"ordered by {key}"]
        store = getattr(self.table, "store", None)
        if store is not None:
            parts.append(f"storage={store.engine_name}")
        return (
            f"Clustered Index Scan [{self.table.schema.name}] "
            f"({'; '.join(parts)})",
            (),
        )


class ClusteredIndexSeek(PhysicalOperator):
    """Range seek on the clustered key (prefix bounds allowed)."""

    def __init__(
        self,
        table: Table,
        lo: Optional[Tuple[Any, ...]],
        hi: Optional[Tuple[Any, ...]],
        alias: Optional[str] = None,
    ):
        super().__init__()
        self.table = table
        self.lo = lo
        self.hi = hi
        self.alias = alias or table.schema.name
        self.columns = _qualify(self.alias, table.schema.column_names)
        key_indexes = tuple(table.schema.key_indexes)
        if lo is not None and hi is not None and lo == hi:
            # an equality-bound key prefix is constant across the output,
            # so the remaining key columns alone determine the order —
            # this is what lets a GROUP BY on a later key column stream
            self.ordering = key_indexes[len(lo):] or key_indexes
            #: output columns known constant (equality-bound key prefix);
            #: the planner skips these when checking order requirements
            self.bound_columns = frozenset(key_indexes[: len(lo)])
        else:
            self.ordering = key_indexes
            self.bound_columns = frozenset()
        self.batch_capable = hasattr(table, "seek")

    def execute(self):
        return self.table.seek(_resolve_key(self.lo), _resolve_key(self.hi))

    def execute_batch(self):
        yield from batches_from_rows(
            self.table.seek(_resolve_key(self.lo), _resolve_key(self.hi))
        )

    def explain_node(self):
        return (
            f"Clustered Index Seek [{self.table.schema.name}] "
            f"({self.lo!r} .. {self.hi!r})",
            (),
        )


class SecondaryIndexSeek(PhysicalOperator):
    """Equality seek through a non-clustered index: the index range
    yields rids, rows come from the heap (a bookmark lookup per row)."""

    def __init__(
        self,
        table: Table,
        index_name: str,
        lo: Optional[Tuple[Any, ...]],
        hi: Optional[Tuple[Any, ...]],
        alias: Optional[str] = None,
    ):
        super().__init__()
        self.table = table
        self.index_name = index_name
        self.lo = lo
        self.hi = hi
        self.alias = alias or table.schema.name
        self.columns = _qualify(self.alias, table.schema.column_names)
        # rows arrive in index-key order, but downstream consumers care
        # about base-column order only when the seek key is a prefix of
        # it — keep it conservative
        self.ordering = ()

    def execute(self):
        return self.table.index_seek(
            self.index_name, _resolve_key(self.lo), _resolve_key(self.hi)
        )

    def explain_node(self):
        return (
            f"Index Seek [{self.table.schema.name}.{self.index_name}] "
            f"({self.lo!r} .. {self.hi!r}) + RID Lookup",
            (),
        )


class Filter(PhysicalOperator):
    """Row filter; keeps rows whose predicate evaluates to exactly True."""

    def __init__(
        self,
        child: PhysicalOperator,
        predicate: RowFn,
        label: str = "",
        batch_predicate: Optional[BatchFn] = None,
    ):
        super().__init__()
        self.child = child
        self.predicate = predicate
        self.batch_predicate = batch_predicate
        self.label = label
        self.columns = list(child.columns)
        self.ordering = child.ordering
        self.batch_capable = batch_predicate is not None

    def execute(self):
        predicate = self.predicate
        for row in self.child:
            if predicate(row) is True:
                yield row

    def execute_batch(self):
        batch_predicate = self.batch_predicate
        for batch in self.child.iter_batches():
            flags = batch_predicate(batch)
            kept = RowBatch(
                row for row, flag in zip(batch, flags) if flag is True
            )
            if kept:
                yield kept

    def children(self):
        return (self.child,)

    def explain_node(self):
        suffix = f" ({self.label})" if self.label else ""
        return f"Filter{suffix}", (self.child,)


def _batch_project(batch_fns: Sequence[BatchFn], batch) -> RowBatch:
    """Evaluate batch-compiled projections column-wise, re-zip into rows."""
    if len(batch_fns) == 1:
        return RowBatch((v,) for v in batch_fns[0](batch))
    return RowBatch(zip(*[fn(batch) for fn in batch_fns]))


class Project(PhysicalOperator):
    """Compute scalar expressions over each input row."""

    def __init__(
        self,
        child: PhysicalOperator,
        fns: Sequence[RowFn],
        names: Sequence[str],
        batch_fns: Optional[Sequence[BatchFn]] = None,
    ):
        super().__init__()
        if len(fns) != len(names):
            raise ExecutionError("projection arity mismatch")
        self.child = child
        self.fns = list(fns)
        self.batch_fns = list(batch_fns) if batch_fns is not None else None
        self.columns = list(names)
        # projection generally destroys known ordering (conservative)
        self.ordering = ()
        self.batch_capable = self.batch_fns is not None

    def execute(self):
        fns = self.fns
        for row in self.child:
            yield tuple(fn(row) for fn in fns)

    def execute_batch(self):
        batch_fns = self.batch_fns
        for batch in self.child.iter_batches():
            yield _batch_project(batch_fns, batch)

    def children(self):
        return (self.child,)

    def explain_node(self):
        return f"Compute Scalar ({', '.join(self.columns)})", (self.child,)


class FusedFilterProject(PhysicalOperator):
    """Filter and projection fused into one batch-mode operator.

    In batch mode the planner collapses a Filter feeding a Compute
    Scalar into this node: each input batch is filtered and projected in
    one operator call, eliminating an entire operator boundary (and its
    per-batch accounting) from the hot pipeline."""

    batch_capable = True

    def __init__(
        self,
        child: PhysicalOperator,
        predicate: RowFn,
        batch_predicate: BatchFn,
        fns: Sequence[RowFn],
        batch_fns: Sequence[BatchFn],
        names: Sequence[str],
        label: str = "",
    ):
        super().__init__()
        if len(fns) != len(names):
            raise ExecutionError("projection arity mismatch")
        self.child = child
        self.predicate = predicate
        self.batch_predicate = batch_predicate
        self.fns = list(fns)
        self.batch_fns = list(batch_fns)
        self.columns = list(names)
        self.label = label
        self.ordering = ()

    def execute(self):
        predicate = self.predicate
        fns = self.fns
        for row in self.child:
            if predicate(row) is True:
                yield tuple(fn(row) for fn in fns)

    def execute_batch(self):
        batch_predicate = self.batch_predicate
        batch_fns = self.batch_fns
        for batch in self.child.iter_batches():
            flags = batch_predicate(batch)
            kept = RowBatch(
                row for row, flag in zip(batch, flags) if flag is True
            )
            if kept:
                yield _batch_project(batch_fns, kept)

    def children(self):
        return (self.child,)

    def explain_node(self):
        suffix = f" ({self.label})" if self.label else ""
        return (
            f"Filter + Compute Scalar ({', '.join(self.columns)}){suffix}",
            (self.child,),
        )


class Sort(PhysicalOperator):
    """Blocking full sort."""

    blocking = True

    def __init__(
        self,
        child: PhysicalOperator,
        key_fns: Sequence[RowFn],
        descending: Sequence[bool],
        label: str = "",
    ):
        super().__init__()
        self.child = child
        self.key_fns = list(key_fns)
        self.descending = list(descending)
        self.label = label
        self.columns = list(child.columns)

    @staticmethod
    def _sort_key(value: Any) -> Tuple[int, Any]:
        # NULLs sort first (ascending), mirroring T-SQL
        return (0, 0) if value is None else (1, value)

    def execute(self):
        rows = list(self.child)
        # stable multi-key sort: apply keys right-to-left
        for fn, desc in reversed(list(zip(self.key_fns, self.descending))):
            rows.sort(key=lambda r: self._sort_key(fn(r)), reverse=desc)
        return iter(rows)

    def children(self):
        return (self.child,)

    def explain_node(self):
        suffix = f" ({self.label})" if self.label else ""
        return f"Sort{suffix}", (self.child,)


class Top(PhysicalOperator):
    """TOP n."""

    batch_capable = True

    def __init__(self, child: PhysicalOperator, n: int):
        super().__init__()
        self.child = child
        self.n = n
        self.columns = list(child.columns)
        self.ordering = child.ordering

    def execute(self):
        count = 0
        for row in self.child:
            if count >= self.n:
                return
            count += 1
            yield row

    def execute_batch(self):
        remaining = self.n
        if remaining <= 0:
            return
        for batch in self.child.iter_batches():
            if len(batch) >= remaining:
                # stop mid-batch: trim and abandon the child stream
                yield RowBatch(batch[:remaining])
                return
            remaining -= len(batch)
            yield batch

    def children(self):
        return (self.child,)

    def explain_node(self):
        return f"Top ({self.n})", (self.child,)


class Distinct(PhysicalOperator):
    """Hash-based duplicate elimination."""

    blocking = True

    def __init__(self, child: PhysicalOperator):
        super().__init__()
        self.child = child
        self.columns = list(child.columns)

    def execute(self):
        seen = set()
        for row in self.child:
            if row not in seen:
                seen.add(row)
                yield row

    def children(self):
        return (self.child,)

    def explain_node(self):
        return "Hash Match (Distinct)", (self.child,)


class RowNumberWindow(PhysicalOperator):
    """``ROW_NUMBER() OVER (ORDER BY ...)``: sort, then number.

    SQL Server plans this as Sort → Segment → Sequence Project; we fold
    the numbering into one operator and append the number as a trailing
    output column.
    """

    blocking = True

    def __init__(
        self,
        child: PhysicalOperator,
        order_fns: Sequence[RowFn],
        descending: Sequence[bool],
        output_name: str = "row_number",
    ):
        super().__init__()
        self.child = child
        self.order_fns = list(order_fns)
        self.descending = list(descending)
        self.columns = list(child.columns) + [output_name]

    def execute(self):
        rows = list(self.child)
        for fn, desc in reversed(list(zip(self.order_fns, self.descending))):
            rows.sort(key=lambda r: Sort._sort_key(fn(r)), reverse=desc)
        for number, row in enumerate(rows, start=1):
            yield row + (number,)

    def children(self):
        return (self.child,)

    def explain_node(self):
        return "Sequence Project (ROW_NUMBER)", (self.child,)


class HashAggregate(PhysicalOperator):
    """Hash Match (Aggregate): group rows by key, run aggregate states.

    Blocking: the full input is consumed before the first group emerges.
    Output columns are the group-by values followed by one column per
    aggregate.
    """

    blocking = True

    def __init__(
        self,
        child: PhysicalOperator,
        group_fns: Sequence[RowFn],
        group_names: Sequence[str],
        aggregates: Sequence[AggregateSpec],
        agg_names: Sequence[str],
        group_indexes: Optional[Sequence[int]] = None,
    ):
        super().__init__()
        self.child = child
        self.group_fns = list(group_fns)
        self.aggregates = list(aggregates)
        self.columns = list(group_names) + list(agg_names)
        #: when every group expression is a plain column, its row indexes
        #: (enables the batch fast path below)
        self.group_indexes = tuple(group_indexes) if group_indexes else None
        self.batch_capable = self.group_indexes is not None and all(
            spec.batch_capable for spec in self.aggregates
        )

    def _count_star_fast_path(self):
        """Batch-at-a-time COUNT(*) grouping: a single-column group key
        counted with :class:`collections.Counter` runs at native speed
        instead of one Python dispatch per row — the engine's stand-in
        for a compiled aggregation operator."""
        from collections import Counter

        index = self.group_indexes[0]
        counts = Counter(row[index] for row in self.child)
        width = len(self.aggregates)
        for key, count in counts.items():
            yield (key,) + (count,) * width

    def execute(self):
        if (
            self.group_indexes is not None
            and len(self.group_indexes) == 1
            and all(
                spec.star and spec.name in ("count", "count_big")
                for spec in self.aggregates
            )
            and self.aggregates
        ):
            yield from self._count_star_fast_path()
            return
        groups: dict = {}
        group_fns = self.group_fns
        specs = self.aggregates
        if len(group_fns) == 1:
            key_fn = group_fns[0]
            single = True
        else:
            single = False
        for row in self.child:
            if single:
                key = key_fn(row)
            else:
                key = tuple(fn(row) for fn in group_fns)
            states = groups.get(key)
            if states is None:
                states = [spec.new_state() for spec in specs]
                groups[key] = states
            for state in states:
                state.add(row)
        for key, states in groups.items():
            group_values = (key,) if single else key
            yield group_values + tuple(state.result() for state in states)

    def execute_batch(self):
        group_indexes = self.group_indexes
        single = len(group_indexes) == 1
        if single:
            index = group_indexes[0]
        else:
            key_getter = itemgetter(*group_indexes)
        accumulators = [
            make_batch_accumulator(spec) for spec in self.aggregates
        ]
        # insertion order of first occurrence — identical to the
        # row-mode groups dict, so both modes emit groups in the same
        # order (dict.update appends new keys, never reorders old ones)
        seen: dict = {}
        for batch in self.child.iter_batches():
            if single:
                keys = [row[index] for row in batch]
            else:
                keys = [key_getter(row) for row in batch]
            seen.update(dict.fromkeys(keys))
            for accumulator in accumulators:
                accumulator.add_batch(keys, batch)
        out = [
            ((key,) if single else key)
            + tuple(acc.result(key) for acc in accumulators)
            for key in seen
        ]
        yield from batches_from_rows(out)

    def children(self):
        return (self.child,)

    def explain_node(self):
        aggs = ", ".join(spec.describe() for spec in self.aggregates)
        return f"Hash Match (Aggregate: {aggs})", (self.child,)


class EncodedAggregate(HashAggregate):
    """Hash aggregation computed directly on encoded column segments.

    The child must be a :class:`ColumnStoreScan`, the group key a single
    plain column, and every aggregate a built-in, non-DISTINCT one over
    a plain column (or ``COUNT(*)``).  Instead of materialising row
    tuples, each surviving segment feeds the batch accumulators
    column-wise: an RLE-encoded group key aggregates run-at-a-time
    (run-length-weighted counting, slice-at-a-time MIN/MAX/COUNT and —
    for exact integer columns — SUM), anything else consumes the cached
    decoded vectors, and only the columns an aggregate references are
    ever gathered, so late materialization ends *inside* the aggregate.

    Groups are emitted in global first-occurrence order, exactly like
    :class:`HashAggregate` in both row and batch mode, keeping every
    execution path bit-identical.
    """

    @staticmethod
    def eligible(child, group_indexes, aggregates) -> bool:
        """May this (child, groups, aggs) combination run encoded?"""
        if not isinstance(child, ColumnStoreScan):
            return False
        if group_indexes is None or len(group_indexes) != 1:
            return False
        return all(
            spec.uda_class is None
            and not spec.distinct
            and (spec.star or spec.arg_index is not None)
            for spec in aggregates
        )

    def execute_batch(self):
        scan = self.child
        if not EncodedAggregate.eligible(
            scan, self.group_indexes, self.aggregates
        ):  # defensive: planner should never build this shape
            yield from super().execute_batch()
            return
        group_schema = scan.schema_index(self.group_indexes[0])
        schema_columns = scan.table.schema.columns
        accumulators = [
            make_batch_accumulator(spec) for spec in self.aggregates
        ]
        # (accumulator, argument schema position or None for *, may the
        #  slice path run?) — slice SUM reassociates addition, which is
        # only exact for integers, so float SUM stays value-at-a-time
        plans = []
        for spec, accumulator in zip(self.aggregates, accumulators):
            if spec.star:
                plans.append((accumulator, None, True))
                continue
            arg_schema = scan.schema_index(spec.arg_index)
            slice_ok = accumulator.slice_capable and (
                spec.name != "sum"
                or schema_columns[arg_schema].sql_type.is_integer
            )
            plans.append((accumulator, arg_schema, slice_ok))
        seen: dict = {}
        for view in scan.iter_segment_views():
            runs = view.runs(group_schema)
            if runs is not None:
                seen.update(dict.fromkeys(key for key, _count in runs))
                keys = None
                for accumulator, arg_schema, slice_ok in plans:
                    if arg_schema is None:
                        accumulator.add_runs(runs)
                    elif slice_ok:
                        accumulator.add_slices(
                            runs, view.gather(arg_schema)
                        )
                    else:
                        if keys is None:
                            keys = view.gather(group_schema)
                        accumulator.add_vector(
                            keys, view.gather(arg_schema)
                        )
            else:
                keys = view.gather(group_schema)
                seen.update(dict.fromkeys(keys))
                for accumulator, arg_schema, _slice_ok in plans:
                    if arg_schema is None:
                        accumulator.add_vector(keys)
                    else:
                        accumulator.add_vector(
                            keys, view.gather(arg_schema)
                        )
        out = [
            (key,) + tuple(acc.result(key) for acc in accumulators)
            for key in seen
        ]
        yield from batches_from_rows(out)

    def explain_node(self):
        aggs = ", ".join(spec.describe() for spec in self.aggregates)
        return f"Columnstore Aggregate ({aggs})", (self.child,)


class StreamAggregate(PhysicalOperator):
    """Stream Aggregate: requires input grouped (sorted) by the group key.

    Non-blocking per group — each group is emitted as soon as the key
    changes, which is what makes the sliding-window consensus plan
    stream. Also handles the no-GROUP-BY scalar aggregate case.
    """

    def __init__(
        self,
        child: PhysicalOperator,
        group_fns: Sequence[RowFn],
        group_names: Sequence[str],
        aggregates: Sequence[AggregateSpec],
        agg_names: Sequence[str],
    ):
        super().__init__()
        self.child = child
        self.group_fns = list(group_fns)
        self.aggregates = list(aggregates)
        self.columns = list(group_names) + list(agg_names)

    def execute(self):
        group_fns = self.group_fns
        specs = self.aggregates
        if not group_fns:
            states = [spec.new_state() for spec in specs]
            for row in self.child:
                for state in states:
                    state.add(row)
            yield tuple(state.result() for state in states)
            return
        current_key = None
        states: Optional[List] = None
        for row in self.child:
            key = tuple(fn(row) for fn in group_fns)
            if states is None:
                current_key, states = key, [s.new_state() for s in specs]
            elif key != current_key:
                yield current_key + tuple(s.result() for s in states)
                current_key, states = key, [s.new_state() for s in specs]
            for state in states:
                state.add(row)
        if states is not None:
            yield current_key + tuple(s.result() for s in states)

    def children(self):
        return (self.child,)

    def explain_node(self):
        aggs = ", ".join(spec.describe() for spec in self.aggregates)
        return f"Stream Aggregate ({aggs})", (self.child,)
