"""TVF execution: standalone TVF scans and CROSS APPLY.

These drive the pull-model contract of :class:`TableValuedFunction`
exactly as Figure 5 of the paper shows: the query processor pulls one
internal object at a time from the function's iterator (``MoveNext``) and
converts it into a SQL row with an explicit ``FillRow`` call. The
conversion stays a separate per-row call on purpose — it is the boundary
cost the paper's Section 5.2 experiment isolates.
"""

from __future__ import annotations

from typing import Any, Callable, Optional, Sequence

from ..errors import ExecutionError
from ..udf import TableValuedFunction
from .base import PhysicalOperator

RowFn = Callable[[Sequence[Any]], Any]


class TvfScan(PhysicalOperator):
    """``SELECT ... FROM SomeTvf(args)`` — TVF as a leaf table source."""

    def __init__(
        self,
        tvf: TableValuedFunction,
        args: Sequence[Any],
        alias: Optional[str] = None,
    ):
        super().__init__()
        self.tvf = tvf
        self.args = list(args)
        name = alias or tvf.name
        self.columns = [f"{name}.{c.name}" for c in tvf.columns]

    def execute(self):
        iterator = self.tvf.create(*self.args)
        fill_row = self.tvf.fill_row
        for obj in iterator:
            yield fill_row(obj)

    def explain_node(self):
        return f"Table Valued Function [{self.tvf.name}]", ()


class CrossApply(PhysicalOperator):
    """``... CROSS APPLY Tvf(expr, ...)`` — invoke the TVF once per outer
    row, emitting outer ⨯ TVF-output rows. The lateral-join workhorse of
    the paper's Query 3 (``CROSS APPLY PivotAlignment(pos, seq, quals)``).
    """

    def __init__(
        self,
        outer: PhysicalOperator,
        tvf: TableValuedFunction,
        arg_fns: Sequence[RowFn],
        alias: Optional[str] = None,
    ):
        super().__init__()
        self.outer = outer
        self.tvf = tvf
        self.arg_fns = list(arg_fns)
        name = alias or tvf.name
        self.columns = list(outer.columns) + [
            f"{name}.{c.name}" for c in tvf.columns
        ]
        self.ordering = outer.ordering

    def execute(self):
        tvf = self.tvf
        fill_row = tvf.fill_row
        arg_fns = self.arg_fns
        for outer_row in self.outer:
            args = [fn(outer_row) for fn in arg_fns]
            for obj in tvf.create(*args):
                yield outer_row + fill_row(obj)

    def children(self):
        return (self.outer,)

    def explain_node(self):
        return f"Nested Loops (Cross Apply {self.tvf.name})", (self.outer,)
