"""The logical plan IR.

``lower_select`` turns a bound SELECT AST into a tree of logical
operators — *what* to compute, free of access paths and algorithms.
The rewrite rules (:mod:`.rules`) transform this tree; the planner then
lowers it to physical operators, choosing seeks, join algorithms and
aggregation strategies with the cost model.

The spine of a lowered SELECT mirrors SQL's semantic order::

    Top? < Distinct? < Project < Sort? < Window? < Filter(HAVING)?
        < Aggregate? < Filter(WHERE)? < [join tree of Get leaves]

Each node knows its output ``columns`` (qualified the same way the
physical operators qualify theirs), so the rules can answer "does this
expression bind against this subtree?" without building any physical
operator.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from ..errors import BindError
from ..expressions import (
    AggregateCall,
    BinaryOp,
    ColumnRef,
    Expr,
    FuncCall,
    WindowCall,
    column_refs,
    expression_to_sql,
    find_aggregates,
    find_windows,
    rewrite,
)
from ..sql import ast


# -- expression helpers (shared with the planner) ----------------------------

def split_conjuncts(expr: Optional[Expr]) -> List[Expr]:
    """Flatten a predicate into its top-level AND-ed conjuncts."""
    if expr is None:
        return []
    if isinstance(expr, BinaryOp) and expr.op.upper() == "AND":
        return split_conjuncts(expr.left) + split_conjuncts(expr.right)
    return [expr]


def conjoin(conjuncts: Sequence[Expr]) -> Optional[Expr]:
    """Rebuild a single predicate from conjuncts (None when empty)."""
    result: Optional[Expr] = None
    for conjunct in conjuncts:
        result = (
            conjunct if result is None else BinaryOp("AND", result, conjunct)
        )
    return result


def bind_udas(expr: Expr, library) -> Expr:
    """Convert registered-UDA function calls into AggregateCall nodes."""

    def transform(node: Expr) -> Optional[Expr]:
        if isinstance(node, FuncCall) and library.uda(node.name) is not None:
            return AggregateCall(node.name, node.args)
        return None

    return rewrite(expr, transform)


def binds_names(columns: Sequence[str], expr: Expr) -> bool:
    """Does every column reference in ``expr`` resolve against this
    column-name list? Replicates the physical binder's rules: qualified
    references need an exact match, unqualified ones an exact match or a
    unique bare-name suffix; any ambiguity fails the bind."""
    lowered = [c.lower() for c in columns]
    for ref in column_refs(expr):
        target = ref.name.lower()
        if ref.qualifier:
            if lowered.count(f"{ref.qualifier.lower()}.{target}") != 1:
                return False
            continue
        exact = lowered.count(target)
        if exact == 1:
            continue
        if exact > 1:
            return False
        suffix = [c for c in lowered if c.rsplit(".", 1)[-1] == target]
        if len(suffix) != 1:
            return False
    return True


# -- nodes -------------------------------------------------------------------

class LogicalNode:
    """Base class: output ``columns`` plus a uniform child protocol."""

    columns: List[str]

    def children(self) -> Sequence["LogicalNode"]:
        return ()

    def label(self) -> str:
        return type(self).__name__


class LogicalGet(LogicalNode):
    """One FROM source: base table, TVF, derived table, or bulk rowset.

    ``table`` is set for base tables (the rules read its statistics);
    ``inner`` holds the lowered plan of a derived table; ``required``
    is filled by projection pruning with the base columns the query
    actually touches."""

    def __init__(
        self,
        source,
        columns: Sequence[str],
        table=None,
        inner: Optional["LogicalPlan"] = None,
    ):
        self.source = source
        self.columns = list(columns)
        self.table = table
        self.inner = inner
        self.required: Optional[Tuple[str, ...]] = None

    @property
    def binding(self) -> Optional[str]:
        return getattr(self.source, "binding_name", None)

    def label(self) -> str:
        name = self.binding or "(constant)"
        suffix = ""
        if self.required is not None:
            suffix = f" cols=({', '.join(self.required)})"
        return f"Get [{name}]{suffix}"


class LogicalFilter(LogicalNode):
    """AND-ed conjuncts over one input. ``kind`` records provenance:
    ``WHERE`` (original clause), ``PUSHED`` (moved onto a source by
    predicate pushdown), or ``HAVING``."""

    def __init__(self, child: LogicalNode, conjuncts: List[Expr], kind: str):
        self.child = child
        self.conjuncts = list(conjuncts)
        self.kind = kind
        self.columns = list(child.columns)

    def children(self):
        return (self.child,)

    def label(self) -> str:
        text = " AND ".join(expression_to_sql(c) for c in self.conjuncts)
        return f"Filter<{self.kind}> [{text}]"


class LogicalJoin(LogicalNode):
    """Inner join; ``conjuncts`` is the flattened ON clause."""

    def __init__(
        self, left: LogicalNode, right: LogicalNode, conjuncts: List[Expr]
    ):
        self.left = left
        self.right = right
        self.conjuncts = list(conjuncts)
        self.columns = list(left.columns) + list(right.columns)

    def children(self):
        return (self.left, self.right)

    def label(self) -> str:
        text = " AND ".join(expression_to_sql(c) for c in self.conjuncts)
        return f"Join [{text}]"


class LogicalApply(LogicalNode):
    """CROSS APPLY of a table-valued function to each outer row."""

    def __init__(self, outer: LogicalNode, source, tvf_columns: Sequence[str]):
        self.outer = outer
        self.source = source
        self.columns = list(outer.columns) + list(tvf_columns)

    def children(self):
        return (self.outer,)

    def label(self) -> str:
        return f"Apply [{self.source.name}]"


class LogicalAggregate(LogicalNode):
    """Grouped (or scalar) aggregation. ``aggregates`` maps the
    lower-cased SQL text of each distinct aggregate call to its node,
    in discovery order — the same keys the planner substitutes."""

    def __init__(
        self,
        child: LogicalNode,
        group_by: List[Expr],
        aggregates: Dict[str, AggregateCall],
        maxdop: Optional[int],
    ):
        self.child = child
        self.group_by = list(group_by)
        self.aggregates = dict(aggregates)
        self.maxdop = maxdop
        group_names = [expression_to_sql(e) for e in self.group_by]
        agg_names = [f"$agg{i}" for i in range(len(self.aggregates))]
        self.columns = group_names + agg_names

    def children(self):
        return (self.child,)

    def label(self) -> str:
        groups = ", ".join(expression_to_sql(e) for e in self.group_by)
        aggs = ", ".join(
            expression_to_sql(a) for a in self.aggregates.values()
        )
        return f"Aggregate [group=({groups}) aggs=({aggs})]"


class LogicalWindow(LogicalNode):
    """Window functions (ROW_NUMBER); one output column per window."""

    def __init__(self, child: LogicalNode, windows: Dict[str, WindowCall]):
        self.child = child
        self.windows = dict(windows)
        self.columns = list(child.columns) + [
            "row_number" for _ in self.windows
        ]

    def children(self):
        return (self.child,)

    def label(self) -> str:
        text = ", ".join(
            expression_to_sql(w) for w in self.windows.values()
        )
        return f"Window [{text}]"


class LogicalSort(LogicalNode):
    def __init__(
        self, child: LogicalNode, order_by: List[Tuple[Expr, bool]]
    ):
        self.child = child
        self.order_by = list(order_by)
        self.columns = list(child.columns)

    def children(self):
        return (self.child,)

    def label(self) -> str:
        keys = ", ".join(
            expression_to_sql(e) + (" DESC" if desc else "")
            for e, desc in self.order_by
        )
        return f"Sort [{keys}]"


class LogicalProject(LogicalNode):
    def __init__(
        self,
        child: LogicalNode,
        items: List[ast.SelectItem],
        columns: Sequence[str],
    ):
        self.child = child
        self.items = list(items)
        self.columns = list(columns)

    def children(self):
        return (self.child,)

    def label(self) -> str:
        return f"Project [{', '.join(self.columns)}]"


class LogicalDistinct(LogicalNode):
    def __init__(self, child: LogicalNode):
        self.child = child
        self.columns = list(child.columns)

    def children(self):
        return (self.child,)

    def label(self) -> str:
        return "Distinct"


class LogicalTop(LogicalNode):
    def __init__(self, child: LogicalNode, n: int):
        self.child = child
        self.n = n
        self.columns = list(child.columns)

    def children(self):
        return (self.child,)

    def label(self) -> str:
        return f"Top [{self.n}]"


class LogicalPlan:
    """A lowered SELECT: the root logical node plus its statement."""

    def __init__(self, root: LogicalNode, stmt: ast.SelectStmt):
        self.root = root
        self.stmt = stmt


# -- lowering ----------------------------------------------------------------

def _lower_source(source, catalog) -> LogicalGet:
    if isinstance(source, ast.TableRef):
        table = catalog.table(source.name)
        alias = source.binding_name
        columns = [f"{alias}.{n}" for n in table.schema.column_names]
        return LogicalGet(source, columns, table=table)
    if isinstance(source, ast.TvfRef):
        tvf = catalog.functions.tvf(source.name)
        if tvf is None:
            raise BindError(
                f"unknown table-valued function {source.name!r}"
            )
        alias = source.binding_name
        columns = [f"{alias}.{c.name}" for c in tvf.columns]
        return LogicalGet(source, columns)
    if isinstance(source, ast.SubqueryRef):
        inner = lower_select(source.select, catalog)
        alias = source.binding_name
        columns = [
            f"{alias}.{c.rsplit('.', 1)[-1]}" for c in inner.root.columns
        ]
        return LogicalGet(source, columns, inner=inner)
    if isinstance(source, ast.OpenRowsetRef):
        alias = source.binding_name
        return LogicalGet(source, [f"{alias}.BulkColumn"])
    raise BindError(f"unsupported FROM source {type(source).__name__}")


def _apply_columns(source, catalog) -> List[str]:
    if not isinstance(source, ast.TvfRef):
        raise BindError("CROSS APPLY supports table-valued functions only")
    tvf = catalog.functions.tvf(source.name)
    if tvf is None:
        raise BindError(f"unknown table-valued function {source.name!r}")
    alias = source.binding_name
    return [f"{alias}.{c.name}" for c in tvf.columns]


def _discover_aggregates(
    stmt: ast.SelectStmt, library
) -> Dict[str, AggregateCall]:
    exprs: List[Expr] = []
    for item in stmt.items:
        if item.expr is not None:
            exprs.append(bind_udas(item.expr, library))
    if stmt.having is not None:
        exprs.append(bind_udas(stmt.having, library))
    for order_expr, _ in stmt.order_by:
        exprs.append(bind_udas(order_expr, library))
    aggregates: Dict[str, AggregateCall] = {}
    for expr in exprs:
        for agg in find_aggregates(expr):
            aggregates.setdefault(expression_to_sql(agg).lower(), agg)
    return aggregates


def _discover_windows(
    stmt: ast.SelectStmt, library
) -> Dict[str, WindowCall]:
    windows: Dict[str, WindowCall] = {}
    for item in stmt.items:
        if item.expr is None:
            continue
        for window in find_windows(bind_udas(item.expr, library)):
            windows.setdefault(expression_to_sql(window).lower(), window)
    return windows


def _project_columns(
    stmt: ast.SelectStmt, child: LogicalNode
) -> List[str]:
    names: List[str] = []
    for item in stmt.items:
        if item.star:
            for col in child.columns:
                if item.star_qualifier and not col.lower().startswith(
                    item.star_qualifier.lower() + "."
                ):
                    continue
                names.append(col.rsplit(".", 1)[-1])
            continue
        if item.alias:
            names.append(item.alias)
        elif isinstance(item.expr, ColumnRef):
            names.append(item.expr.name)
        else:
            names.append(expression_to_sql(item.expr))
    return names


def lower_select(stmt: ast.SelectStmt, catalog) -> LogicalPlan:
    """Bind a SELECT statement into a logical plan."""
    library = catalog.functions

    if stmt.source is None:
        root: LogicalNode = LogicalGet(None, [])
    else:
        root = _lower_source(stmt.source, catalog)
        for join in stmt.joins:
            if join.kind == "CROSS APPLY":
                root = LogicalApply(
                    root, join.source, _apply_columns(join.source, catalog)
                )
            else:
                right = _lower_source(join.source, catalog)
                root = LogicalJoin(root, right, split_conjuncts(join.on))

    where = split_conjuncts(stmt.where)
    if where:
        root = LogicalFilter(root, where, kind="WHERE")

    aggregates = _discover_aggregates(stmt, library)
    if stmt.group_by or aggregates:
        root = LogicalAggregate(
            root, list(stmt.group_by), aggregates, stmt.maxdop
        )
    if stmt.having is not None:
        root = LogicalFilter(root, [stmt.having], kind="HAVING")

    windows = _discover_windows(stmt, library)
    if windows:
        root = LogicalWindow(root, windows)

    if stmt.order_by:
        root = LogicalSort(root, list(stmt.order_by))
    root = LogicalProject(
        root, list(stmt.items), _project_columns(stmt, root)
    )
    if stmt.distinct:
        root = LogicalDistinct(root)
    if stmt.top is not None:
        root = LogicalTop(root, stmt.top)
    return LogicalPlan(root, stmt)


def render_logical(plan: LogicalPlan, indent: int = 0) -> str:
    """Indented text rendering of a logical plan (mirrors EXPLAIN)."""

    def walk(node: LogicalNode, depth: int) -> List[str]:
        lines = ["  " * depth + "-> " + node.label()]
        if isinstance(node, LogicalGet) and node.inner is not None:
            lines.extend(walk(node.inner.root, depth + 1))
        for child in node.children():
            lines.extend(walk(child, depth + 1))
        return lines

    return "\n".join(walk(plan.root, indent))
