"""Rewrite rules over the logical plan IR.

Three classic transformations, run in order:

1. **predicate pushdown** — WHERE conjuncts move onto the first FROM
   source (left-to-right) whose output binds all their columns, so
   filters run below joins and seeks can consume them;
2. **join reordering** — units of a join chain are greedily reordered
   by estimated (post-filter) cardinality, smallest first, walking the
   equality-connectivity graph so no cross product is introduced; the
   ON conjuncts are re-distributed to the earliest join where they
   bind. Chains containing CROSS APPLY keep their order (the apply
   correlates positionally), as does any chain where redistribution
   cannot place every conjunct;
3. **projection pruning** — base-table Gets record which columns the
   statement actually references, so heap scans materialise narrower
   tuples. ``SELECT *`` (or a qualified star over a source) disables
   pruning for the sources it expands.

All rules mutate the plan in place and recurse into derived-table
subplans first.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from ..expressions import (
    BinaryOp,
    ColumnRef,
    Expr,
    FuncCall,
    Literal,
    Parameter,
    column_refs,
    expression_to_sql,
    rewrite,
    walk as walk_expr,
)
from ..sql import ast
from .cost import CostModel
from .logical import (
    LogicalAggregate,
    LogicalApply,
    LogicalFilter,
    LogicalGet,
    LogicalJoin,
    LogicalNode,
    LogicalPlan,
    LogicalProject,
    LogicalSort,
    LogicalWindow,
    binds_names,
)

_CHILD_ATTRS = ("child", "left", "right", "outer")


def _walk(node: LogicalNode):
    yield node
    for child in node.children():
        yield from _walk(child)


def apply_rewrites(
    plan: LogicalPlan,
    catalog,
    cost: Optional[CostModel] = None,
    notes: Optional[List[str]] = None,
) -> LogicalPlan:
    """Run every rewrite rule over ``plan`` (and its subplans).

    ``notes`` (when given) collects human-readable descriptions of
    verifier-driven decisions — constant folds, refused pushdowns — for
    EXPLAIN's ``note:`` lines.
    """
    cost = cost or CostModel()
    library = getattr(catalog, "functions", None)
    for node in list(_walk(plan.root)):
        if isinstance(node, LogicalGet) and node.inner is not None:
            apply_rewrites(node.inner, catalog, cost, notes)
    fold_constant_udfs(plan, library, notes)
    push_down_predicates(plan, library, notes)
    reorder_joins(plan, cost)
    prune_columns(plan)
    return plan


# -- constant folding of verified-deterministic UDFs -------------------------

def _foldable(udf) -> bool:
    """Only a *verified* IsDeterministic=true, DataAccessKind.None UDF
    may be evaluated at plan time."""
    return (
        udf is not None
        and getattr(udf, "is_deterministic", None) is True
        and getattr(udf, "data_access", "NONE") == "NONE"
    )


def fold_constant_udfs(
    plan: LogicalPlan, library, notes: Optional[List[str]] = None
) -> None:
    """Evaluate calls to verified-deterministic scalar UDFs over
    all-literal arguments once, at plan time (the CLR-hosting payoff:
    the optimizer may fold only what the verifier proved pure).

    Runs before predicate pushdown so a folded equality conjunct can
    still turn into an index seek.
    """
    if library is None:
        return

    def transform(node: Expr) -> Optional[Expr]:
        if not isinstance(node, FuncCall):
            return None
        if not all(isinstance(a, Literal) for a in node.args):
            return None
        if any(isinstance(a, Parameter) for a in node.args):
            # parameter slots change between executions of a cached plan
            # template — folding would freeze the first-seen value
            return None
        udf = library.scalar(node.name)
        if not _foldable(udf):
            return None
        original = expression_to_sql(node)
        try:
            value = udf(*[a.value for a in node.args])
        except Exception:
            return None  # leave runtime errors to runtime
        if notes is not None:
            notes.append(
                f"constant-folded {original} to {value!r} — "
                f"udf {udf.name!r} is verified deterministic"
            )
        return Literal(value)

    def fold(expr: Expr) -> Expr:
        return rewrite(expr, transform)

    for node in _walk(plan.root):
        if isinstance(node, (LogicalFilter, LogicalJoin)):
            node.conjuncts = [fold(c) for c in node.conjuncts]
        elif isinstance(node, LogicalProject):
            for item in node.items:
                if not item.star and item.expr is not None:
                    item.expr = fold(item.expr)
        elif isinstance(node, LogicalAggregate):
            node.group_by = [fold(e) for e in node.group_by]
        elif isinstance(node, LogicalSort):
            node.order_by = [
                (fold(e), desc) for e, desc in node.order_by
            ]


# -- predicate pushdown ------------------------------------------------------

def _push_into(
    node: LogicalNode, conjuncts: List[Expr]
) -> Tuple[LogicalNode, List[Expr]]:
    """Offer ``conjuncts`` to every FROM source under ``node`` in
    left-to-right order; each conjunct lands on the first source whose
    columns bind it. Returns the rewritten subtree + leftovers."""
    if isinstance(node, LogicalJoin):
        node.left, conjuncts = _push_into(node.left, conjuncts)
        node.right, conjuncts = _push_into(node.right, conjuncts)
        node.columns = list(node.left.columns) + list(node.right.columns)
        return node, conjuncts
    if isinstance(node, LogicalApply):
        node.outer, conjuncts = _push_into(node.outer, conjuncts)
        return node, conjuncts
    if isinstance(node, (LogicalGet, LogicalFilter)):
        local = [c for c in conjuncts if binds_names(node.columns, c)]
        if not local:
            return node, conjuncts
        remaining = [c for c in conjuncts if id(c) not in
                     {id(x) for x in local}]
        if isinstance(node, LogicalFilter):
            node.conjuncts.extend(local)
            return node, remaining
        return LogicalFilter(node, local, kind="PUSHED"), remaining
    return node, conjuncts


#: built-in scalar functions known non-deterministic (not in the UDF
#: registry, so the verifier never sees them)
_NONDETERMINISTIC_BUILTINS = {"newid", "rand", "getdate"}


def _pushdown_barrier(conjunct: Expr, library) -> Optional[str]:
    """Name of the first call in ``conjunct`` that forbids moving the
    predicate (non-deterministic or data-accessing), else None.

    Pushing such a predicate below a join/derived table changes how many
    times — and against which intermediate rows — it is evaluated, which
    is only semantics-preserving for pure functions.
    """
    for node in walk_expr(conjunct):
        if not isinstance(node, FuncCall):
            continue
        if node.name.lower() in _NONDETERMINISTIC_BUILTINS:
            return node.name
        udf = library.scalar(node.name) if library is not None else None
        if udf is None:
            continue
        if getattr(udf, "is_deterministic", None) is False:
            return udf.name
        if getattr(udf, "data_access", "NONE") != "NONE":
            return udf.name
    return None


def push_down_predicates(
    plan: LogicalPlan, library=None, notes: Optional[List[str]] = None
) -> None:
    def visit(node: LogicalNode) -> LogicalNode:
        if isinstance(node, LogicalFilter) and node.kind == "WHERE":
            held: List[Expr] = []
            offered: List[Expr] = []
            for conjunct in node.conjuncts:
                barrier = _pushdown_barrier(conjunct, library)
                if barrier is not None:
                    held.append(conjunct)
                    if notes is not None:
                        notes.append(
                            "predicate "
                            f"[{expression_to_sql(conjunct)}] not pushed "
                            f"down — {barrier!r} is non-deterministic or "
                            "accesses data"
                        )
                else:
                    offered.append(conjunct)
            child, remaining = _push_into(node.child, offered)
            remaining = held + remaining
            if not remaining:
                return child
            node.child = child
            node.conjuncts = remaining
            return node
        for attr in _CHILD_ATTRS:
            if hasattr(node, attr):
                setattr(node, attr, visit(getattr(node, attr)))
        return node

    plan.root = visit(plan.root)


# -- join reordering ---------------------------------------------------------

def _unit_rows(unit: LogicalNode, cost: CostModel) -> int:
    """Estimated cardinality of one join unit (source + pushed filters)."""
    if isinstance(unit, LogicalFilter):
        base = unit.child
        if isinstance(base, LogicalGet) and base.table is not None:
            return cost.scan_output(base.table, unit.conjuncts)
        return max(_unit_rows(base, cost) // 2, 1)
    if isinstance(unit, LogicalGet):
        if unit.table is not None:
            return unit.table.row_count
        if unit.inner is not None or isinstance(unit.source, ast.TvfRef):
            return cost.default_tvf_rows
        return 1  # OPENROWSET / constant row
    return cost.default_tvf_rows


def _is_equi_between(
    conjunct: Expr, left_cols: Sequence[str], right_cols: Sequence[str]
) -> bool:
    """Is this an equality between a column of each side?"""
    if not (
        isinstance(conjunct, BinaryOp)
        and conjunct.op == "="
        and isinstance(conjunct.left, ColumnRef)
        and isinstance(conjunct.right, ColumnRef)
    ):
        return False
    a, b = conjunct.left, conjunct.right
    return (
        binds_names(left_cols, a) and binds_names(right_cols, b)
    ) or (
        binds_names(left_cols, b) and binds_names(right_cols, a)
    )


def _reorder_chain(
    top: LogicalJoin, cost: CostModel
) -> LogicalNode:
    units: List[LogicalNode] = []
    pool: List[Expr] = []

    def collect(node: LogicalNode) -> None:
        if isinstance(node, LogicalJoin):
            collect(node.left)
            pool.extend(node.conjuncts)
            units.append(node.right)
        else:
            units.append(node)

    collect(top)
    if len(units) < 3:
        return top  # a two-way join has nothing to reorder
    if any(
        isinstance(n, LogicalApply)
        for unit in units
        for n in _walk(unit)
    ):
        return top

    estimates = {id(u): _unit_rows(u, cost) for u in units}
    remaining = list(units)
    order = [min(remaining, key=lambda u: estimates[id(u)])]
    remaining.remove(order[0])
    bound_cols = list(order[0].columns)
    while remaining:
        connected = [
            u
            for u in remaining
            if any(
                _is_equi_between(c, bound_cols, u.columns) for c in pool
            )
        ]
        if not connected:
            return top  # would introduce a cross product — keep as written
        nxt = min(connected, key=lambda u: estimates[id(u)])
        remaining.remove(nxt)
        order.append(nxt)
        bound_cols.extend(nxt.columns)

    if [id(u) for u in order] == [id(u) for u in units]:
        return top  # unchanged — keep the original ON placement exactly

    # rebuild left-deep, re-distributing ON conjuncts to the earliest
    # join where they bind
    unused = list(pool)
    current: LogicalNode = order[0]
    for unit in order[1:]:
        combined = list(current.columns) + list(unit.columns)
        here = [
            c
            for c in unused
            if binds_names(combined, c)
            and not binds_names(current.columns, c)
        ]
        if not any(
            _is_equi_between(c, current.columns, unit.columns)
            for c in here
        ):
            return top  # no equality predicate for this step — bail out
        unused = [c for c in unused if id(c) not in {id(x) for x in here}]
        current = LogicalJoin(current, unit, here)
    if unused:
        return top  # a conjunct found no home — keep the original tree
    return current


def reorder_joins(plan: LogicalPlan, cost: CostModel) -> None:
    def visit(node: LogicalNode) -> LogicalNode:
        if isinstance(node, LogicalJoin):
            return _reorder_chain(node, cost)
        for attr in _CHILD_ATTRS:
            if hasattr(node, attr):
                setattr(node, attr, visit(getattr(node, attr)))
        return node

    plan.root = visit(plan.root)


# -- projection pruning ------------------------------------------------------

def _collect_refs(plan: LogicalPlan) -> Tuple[List[ColumnRef], List[Optional[str]]]:
    """Every column reference at this query level, plus the qualifiers
    of any ``*`` items (None = unqualified star)."""
    refs: List[ColumnRef] = []
    stars: List[Optional[str]] = []

    def add(expr: Optional[Expr]) -> None:
        if expr is not None:
            refs.extend(column_refs(expr))

    for node in _walk(plan.root):
        if isinstance(node, (LogicalFilter, LogicalJoin)):
            for conjunct in node.conjuncts:
                add(conjunct)
        elif isinstance(node, LogicalApply):
            for arg in node.source.args:
                add(arg)
        elif isinstance(node, LogicalAggregate):
            for expr in node.group_by:
                add(expr)
            for agg in node.aggregates.values():
                add(agg)
        elif isinstance(node, LogicalWindow):
            for window in node.windows.values():
                add(window)
        elif isinstance(node, LogicalSort):
            for expr, _ in node.order_by:
                add(expr)
        elif isinstance(node, LogicalProject):
            for item in node.items:
                if item.star:
                    stars.append(item.star_qualifier)
                else:
                    add(item.expr)
    stmt = plan.stmt
    add(stmt.having)
    for expr, _ in stmt.order_by:
        add(expr)
    return refs, stars


def prune_columns(plan: LogicalPlan) -> None:
    refs, stars = _collect_refs(plan)
    if any(q is None for q in stars):
        return  # SELECT * needs every column of every source
    starred = {q.lower() for q in stars if q is not None}
    for node in _walk(plan.root):
        if not isinstance(node, LogicalGet) or node.table is None:
            continue
        binding = (node.binding or "").lower()
        if binding in starred:
            continue
        schema = node.table.schema
        names = {c.name.lower() for c in schema.columns}
        wanted = set()
        for ref in refs:
            target = ref.name.lower()
            if target not in names:
                continue
            if ref.qualifier is None or ref.qualifier.lower() == binding:
                wanted.add(target)
        required = tuple(
            c.name for c in schema.columns if c.name.lower() in wanted
        )
        if not required:
            # e.g. SELECT COUNT(*): one column is enough to count rows
            required = (schema.columns[0].name,)
        if len(required) < len(schema.columns):
            node.required = required
            node.columns = [
                f"{node.binding}.{name}" for name in required
            ]
