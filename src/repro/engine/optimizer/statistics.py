"""Table and column statistics for the cost-based optimizer.

``UPDATE STATISTICS <table>`` (or the PostgreSQL-flavoured ``ANALYZE
<table>``) scans a table once and records, per column:

- row count, NULL count, and number of distinct values;
- min / max;
- the most common values with their exact frequencies (the MCV list),
  which makes equality estimates robust on heavily skewed genomics data
  (a handful of chromosomes own most alignments);
- an equi-depth histogram over the remaining values for range
  predicates.

Estimates never fail: every helper degrades to a default selectivity
when the statistics are missing or the predicate shape is out of reach,
mirroring the "magic numbers" real optimizers fall back on.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

#: defaults used when no statistics have been collected
DEFAULT_EQ_SELECTIVITY = 0.1
DEFAULT_RANGE_SELECTIVITY = 1 / 3
DEFAULT_LIKE_SELECTIVITY = 0.1
DEFAULT_SELECTIVITY = 0.5

#: histogram resolution (equi-depth buckets per column)
DEFAULT_BUCKETS = 32
#: most-common-value list length per column
DEFAULT_MCV = 8


def _orderable(values: Sequence[Any]) -> bool:
    """Can ``values`` be sorted as one homogeneous sequence?"""
    try:
        sorted(values)
        return True
    except TypeError:
        return False


@dataclass(frozen=True)
class HistogramBucket:
    """One equi-depth bucket: values in ``(lo, hi]`` (lo exclusive except
    for the first bucket), with exact row and distinct counts."""

    lo: Any
    hi: Any
    rows: int
    distinct: int


@dataclass
class ColumnStats:
    """Statistics for one column of one table."""

    name: str
    n_rows: int = 0
    n_nulls: int = 0
    n_distinct: int = 0
    min_value: Any = None
    max_value: Any = None
    #: most common values → exact frequency
    mcv: Dict[Any, int] = field(default_factory=dict)
    #: equi-depth histogram over the non-MCV values
    histogram: List[HistogramBucket] = field(default_factory=list)

    @property
    def non_null_rows(self) -> int:
        return self.n_rows - self.n_nulls

    # -- selectivities -------------------------------------------------------

    def eq_selectivity(self, value: Any) -> float:
        """Fraction of rows satisfying ``col = value``."""
        if self.non_null_rows == 0:
            return 0.0
        if value is None:
            return 0.0  # col = NULL never matches
        if value in self.mcv:
            return self.mcv[value] / self.n_rows
        rest_rows = self.non_null_rows - sum(self.mcv.values())
        rest_distinct = self.n_distinct - len(self.mcv)
        if rest_distinct <= 0 or rest_rows <= 0:
            # every value is in the MCV list; an unseen literal matches
            # nothing (estimate one row, never zero)
            return 1.0 / max(self.n_rows, 1)
        return (rest_rows / rest_distinct) / self.n_rows

    def range_selectivity(
        self, lo: Any = None, hi: Any = None,
        lo_inclusive: bool = True, hi_inclusive: bool = True,
    ) -> float:
        """Fraction of rows with ``lo <(=) col <(=) hi`` (either bound
        may be None for an open interval)."""
        if self.non_null_rows == 0:
            return 0.0
        below_hi = 1.0 if hi is None else self._fraction_below(hi, hi_inclusive)
        below_lo = 0.0 if lo is None else self._fraction_below(lo, not lo_inclusive)
        return max(below_hi - below_lo, 0.0)

    def _fraction_below(self, value: Any, inclusive: bool) -> float:
        """Fraction of non-NULL rows ``<= value`` (or ``< value``)."""
        try:
            if self.min_value is not None and value < self.min_value:
                return 0.0
            if self.max_value is not None and value > self.max_value:
                return 1.0
        except TypeError:
            return DEFAULT_RANGE_SELECTIVITY
        covered = 0.0
        for mcv_value, count in self.mcv.items():
            try:
                hit = mcv_value <= value if inclusive else mcv_value < value
            except TypeError:
                continue
            if hit:
                covered += count
        for bucket in self.histogram:
            try:
                if bucket.hi <= value:
                    covered += bucket.rows
                elif bucket.lo is None or bucket.lo < value:
                    covered += bucket.rows * self._bucket_fraction(bucket, value)
            except TypeError:
                covered += bucket.rows * DEFAULT_RANGE_SELECTIVITY
        return min(covered / self.non_null_rows, 1.0)

    @staticmethod
    def _bucket_fraction(bucket: HistogramBucket, value: Any) -> float:
        """Linear interpolation inside a partially-covered bucket."""
        lo, hi = bucket.lo, bucket.hi
        if isinstance(lo, (int, float)) and isinstance(hi, (int, float)):
            width = hi - lo
            if width > 0:
                return min(max((value - lo) / width, 0.0), 1.0)
        return 0.5

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"ColumnStats({self.name}: rows={self.n_rows} "
            f"nulls={self.n_nulls} ndv={self.n_distinct} "
            f"range=[{self.min_value!r}..{self.max_value!r}] "
            f"mcv={len(self.mcv)} buckets={len(self.histogram)})"
        )


@dataclass
class TableStats:
    """Statistics for one table, keyed by lowercase column name."""

    table_name: str
    row_count: int = 0
    columns: Dict[str, ColumnStats] = field(default_factory=dict)
    #: monotonically increasing per-table version (bumped on re-ANALYZE)
    version: int = 1

    def column(self, name: str) -> Optional[ColumnStats]:
        return self.columns.get(name.lower())

    def n_distinct(self, name: str) -> Optional[int]:
        stats = self.column(name)
        return stats.n_distinct if stats is not None else None


def _build_column_stats(
    name: str,
    values: List[Any],
    buckets: int,
    mcv_size: int,
) -> ColumnStats:
    from collections import Counter

    n_rows = len(values)
    non_null = [v for v in values if v is not None]
    stats = ColumnStats(
        name=name, n_rows=n_rows, n_nulls=n_rows - len(non_null)
    )
    if not non_null:
        return stats
    counts = Counter(non_null)
    stats.n_distinct = len(counts)
    if not _orderable(list(counts.keys())):
        # mixed / unorderable types: keep counts only
        stats.mcv = dict(counts.most_common(mcv_size))
        return stats
    stats.min_value = min(counts)
    stats.max_value = max(counts)
    # MCV list: only values strictly more frequent than the average keep
    # a slot (a uniform column gets no MCVs, all mass in the histogram)
    avg_freq = len(non_null) / len(counts)
    stats.mcv = {
        value: count
        for value, count in counts.most_common(mcv_size)
        if count > avg_freq or len(counts) <= mcv_size
    }
    remainder = sorted(v for v in non_null if v not in stats.mcv)
    if remainder:
        depth = max(len(remainder) // buckets, 1)
        lo: Any = None
        index = 0
        while index < len(remainder):
            end = min(index + depth, len(remainder))
            hi = remainder[end - 1]
            # extend the bucket through duplicates of its upper bound so
            # a value never straddles two buckets
            while end < len(remainder) and remainder[end] == hi:
                end += 1
            chunk = remainder[index:end]
            stats.histogram.append(
                HistogramBucket(
                    lo=lo, hi=hi, rows=len(chunk), distinct=len(set(chunk))
                )
            )
            lo = hi
            index = end
    return stats


def harvest_segment_statistics(
    table, version: int = 1
) -> Optional[TableStats]:
    """Zero-scan statistics for a column table, harvested from segment
    metadata alone.

    Each column segment already carries a zone map (min/max), a NULL
    count, and a distinct-count hint recorded free at seal time — so
    every sealed segment becomes one histogram bucket and nothing is
    ever decoded. Distinct counts combine range-aware: segments whose
    zone ranges are disjoint contribute additively (sequential keys),
    overlapping ranges are assumed to share values (categorical
    columns). The open tail is row-wise and small; it is folded in as
    one extra bucket.

    Used as the automatic fallback when ``UPDATE STATISTICS`` has not
    run; a real ANALYZE (full scan, MCVs, equi-depth buckets) still
    supersedes it.
    """
    store = getattr(table, "store", None)
    segments = getattr(store, "segments", None)
    if not segments:
        return None
    schema = table.schema
    stats = TableStats(
        table_name=schema.name, row_count=table.row_count, version=version
    )
    tail = store.tail_rows() if hasattr(store, "tail_rows") else []
    for col_index, column_def in enumerate(schema.columns):
        cs = ColumnStats(name=column_def.name)
        ranges: List[Tuple[Any, Any, Optional[int]]] = []
        for segment in segments:
            column = segment.columns[col_index]
            cs.n_rows += segment.rows
            cs.n_nulls += column.null_count
            if column.has_zone and segment.rows > column.null_count:
                cs.histogram.append(
                    HistogramBucket(
                        lo=column.min_value,
                        hi=column.max_value,
                        rows=segment.rows - column.null_count,
                        distinct=column.ndv or 0,
                    )
                )
                ranges.append(
                    (column.min_value, column.max_value, column.ndv)
                )
        if tail:
            values = [row[col_index] for row in tail]
            non_null = [v for v in values if v is not None]
            cs.n_rows += len(values)
            cs.n_nulls += len(values) - len(non_null)
            if non_null and _orderable(non_null):
                try:
                    distinct: Optional[int] = len(set(non_null))
                except TypeError:
                    distinct = None
                lo, hi = min(non_null), max(non_null)
                cs.histogram.append(
                    HistogramBucket(
                        lo=lo, hi=hi, rows=len(non_null),
                        distinct=distinct or 0,
                    )
                )
                ranges.append((lo, hi, distinct))
        if ranges:
            try:
                cs.min_value = min(r[0] for r in ranges)
                cs.max_value = max(r[1] for r in ranges)
            except TypeError:
                cs.min_value = cs.max_value = None
        if ranges and all(r[2] for r in ranges):
            try:
                ordered = sorted(ranges, key=lambda r: r[0])
            except TypeError:
                ordered = None
            if ordered is not None:
                total = 0
                cluster_hi: Any = None
                cluster_ndv = 0
                for lo, hi, ndv in ordered:
                    if cluster_hi is None or lo > cluster_hi:
                        total += cluster_ndv
                        cluster_ndv, cluster_hi = ndv, hi
                    else:
                        cluster_ndv = max(cluster_ndv, ndv)
                        cluster_hi = max(cluster_hi, hi)
                total += cluster_ndv
                cs.n_distinct = min(total, cs.non_null_rows)
        if cs.n_distinct == 0 and cs.non_null_rows:
            # unknown hint (unhashable values): conservative guess
            cs.n_distinct = max(
                int(cs.non_null_rows * DEFAULT_EQ_SELECTIVITY), 1
            )
        stats.columns[column_def.name.lower()] = cs
    return stats


@dataclass
class SelectivityObservation:
    """Feedback for one literal-masked predicate on one table."""

    table_name: str
    predicate: str
    observed: float      # EWMA of actual rows_out / rows_in
    samples: int = 0
    last_rows_in: int = 0
    last_rows_out: int = 0


class SelectivityMemory:
    """Observed predicate selectivities, harvested from executed plans.

    Filters directly above a base scan report ``(rows_in, rows_out)``
    per execution; keys are ``(table, literal-masked predicate)`` so
    ``chrom = 'chr1'`` and ``chrom = 'chrX'`` share one slot — the
    memory learns the *workload-average* selectivity of a predicate
    shape, which is exactly the estimate to fall back on when the
    optimizer would otherwise guess a magic number. Value-sensitive
    histogram/MCV estimates deliberately take precedence (parameter
    sniffing needs them to stay per-value); the memory corrects the
    blind defaults (LIKE, stats-less columns, exotic shapes).
    """

    def __init__(self, alpha: float = 0.5, max_entries: int = 512):
        self.alpha = float(alpha)
        self.max_entries = int(max_entries)
        self._memory: Dict[Tuple[str, str], SelectivityObservation] = {}

    def __len__(self) -> int:
        return len(self._memory)

    @staticmethod
    def _key(table_name: str, predicate: str) -> Tuple[str, str]:
        from ..querystore import mask_literals

        return (table_name.lower(), mask_literals(predicate))

    def observe(
        self, table_name: str, predicate: str, rows_in: int, rows_out: int
    ) -> None:
        if rows_in <= 0 or predicate.endswith("..."):
            return  # nothing flowed, or a truncated label (ambiguous key)
        selectivity = min(max(rows_out / rows_in, 0.0), 1.0)
        key = self._key(table_name, predicate)
        entry = self._memory.get(key)
        if entry is None:
            if len(self._memory) >= self.max_entries:
                self._memory.pop(next(iter(self._memory)))
            entry = SelectivityObservation(
                table_name=table_name, predicate=key[1], observed=selectivity
            )
            self._memory[key] = entry
        else:
            entry.observed += self.alpha * (selectivity - entry.observed)
        entry.samples += 1
        entry.last_rows_in = rows_in
        entry.last_rows_out = rows_out

    def lookup(self, table_name: str, predicate: str) -> Optional[float]:
        entry = self._memory.get(self._key(table_name, predicate))
        return entry.observed if entry is not None else None

    def observations(self) -> List[SelectivityObservation]:
        return list(self._memory.values())

    def clear(self) -> None:
        self._memory.clear()


def collect_table_statistics(
    table,
    buckets: int = DEFAULT_BUCKETS,
    mcv_size: int = DEFAULT_MCV,
    version: int = 1,
) -> TableStats:
    """One full scan of ``table`` → fresh :class:`TableStats`.

    The scan surfaces FILESTREAM GUIDs like any query would; GUID and
    byte-payload columns simply record row/NULL/distinct counts.
    """
    schema = table.schema
    columns: List[Tuple[str, List[Any]]] = [
        (col.name, []) for col in schema.columns
    ]
    row_count = 0
    for row in table.scan():
        row_count += 1
        for (name, values), cell in zip(columns, row):
            values.append(cell)
    stats = TableStats(table_name=schema.name, row_count=row_count,
                       version=version)
    for name, values in columns:
        stats.columns[name.lower()] = _build_column_stats(
            name, values, buckets=buckets, mcv_size=mcv_size
        )
    return stats
