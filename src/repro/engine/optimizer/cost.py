"""The cost model: cardinality estimation + operator pricing.

Every physical alternative the planner weighs is priced in abstract
"row units" from the same table statistics ``UPDATE STATISTICS``
collects (:mod:`.statistics`):

- **access paths** — a heap scan pays one unit per stored row plus a
  predicate-evaluation surcharge; a clustered seek pays a B-tree
  descend plus one (slightly cheaper, sequential-leaf) unit per
  qualifying row; a secondary-index seek additionally pays a bookmark
  lookup per row, which is what prices it out once the predicate stops
  being selective;
- **joins** — merge pays per input row, hash pays a build surcharge on
  the inner side; with both inputs pre-ordered merge always prices
  cheaper, matching SQL Server's preference for pre-sorted inputs;
- **aggregation** — the parallel exchange plan pays a fixed startup
  cost (worker-process spawn + repartition buffers) plus a per-row
  transport charge (rows and partial states cross a process boundary
  pickled — measured by the worker pool's byte counters) that serial
  plans avoid; the crossover where the exchange pays for itself::

      startup / (agg_row * (1 - 1/dop) - repartition_row - transport_row)

  which at the defaults (dop=4) lands at ~54 167 input rows — the
  threshold earlier versions hard-coded is now *derived*, and the
  constants themselves come from measured pool overheads
  (``WorkerPool.spawn_seconds``, ``RunStats.bytes_sent``).

Estimates are advisory: a missing statistic degrades to the default
selectivities in :mod:`.statistics`, never to an error.
"""

from __future__ import annotations

import math
from typing import Any, List, Optional, Sequence, Tuple

from ..expressions import (
    Between,
    BinaryOp,
    ColumnRef,
    Expr,
    InList,
    IsNull,
    Like,
    Literal,
    expression_to_sql,
)
from .statistics import (
    DEFAULT_EQ_SELECTIVITY,
    DEFAULT_LIKE_SELECTIVITY,
    DEFAULT_RANGE_SELECTIVITY,
    DEFAULT_SELECTIVITY,
    TableStats,
)

_FLIPPED = {"<": ">", "<=": ">=", ">": "<", ">=": "<="}


def _column_comparison(
    conjunct: Expr,
) -> Optional[Tuple[ColumnRef, str, Any]]:
    """``(column, op, literal value)`` for column-vs-constant comparisons
    (normalised so the column is on the left), else None."""
    if not isinstance(conjunct, BinaryOp):
        return None
    op = conjunct.op
    if op not in ("=", "<", "<=", ">", ">=", "<>", "!="):
        return None
    left, right = conjunct.left, conjunct.right
    if isinstance(left, Literal) and isinstance(right, ColumnRef):
        left, right = right, left
        op = _FLIPPED.get(op, op)
    if isinstance(left, ColumnRef) and isinstance(right, Literal):
        return left, op, right.value
    return None


def equality_column_names(conjuncts: Sequence[Expr]) -> List[str]:
    """Lower-cased bare column names with an equality-vs-constant
    conjunct — the raw material of the full-clustered-key rule."""
    names = []
    for conjunct in conjuncts:
        comparison = _column_comparison(conjunct)
        if comparison is not None and comparison[1] == "=":
            names.append(comparison[0].name.lower())
    return names


class CostModel:
    """Prices plans from table statistics. All constants are per-row
    unit costs, tunable per instance (tests pin decisions by nudging
    them, e.g. lowering ``exchange_startup_cost``)."""

    # access paths
    scan_row_cost = 1.0          # heap scan, per stored row
    ordered_scan_row_cost = 1.1  # clustered scan (B-tree leaf chain)
    seek_descend_cost = 0.3      # one B-tree root-to-leaf descend
    seek_row_cost = 0.9          # per row delivered from the leaf range
    bookmark_lookup_cost = 2.0   # secondary index: heap fetch per row
    # row-at-a-time operators
    filter_row_cost = 0.4        # predicate evaluation per input row
    project_row_cost = 0.05
    sort_row_factor = 0.2        # times n*log2(n)
    # joins
    hash_build_row_cost = 1.5
    hash_probe_row_cost = 1.0
    merge_row_cost = 0.5
    nested_loop_row_cost = 0.5   # per (outer x inner) pair
    output_row_cost = 0.1
    # aggregation
    agg_row_cost = 1.2
    stream_agg_row_cost = 1.0
    repartition_row_cost = 0.25
    exchange_startup_cost = 32_500.0
    # pickling a row (or its partial state) across the worker-process
    # boundary; calibrated from the pool's measured bytes-per-row and
    # round-trip times on the bench tables (benchmarks/bench_parallel.py)
    transport_row_cost = 0.05
    # table functions
    tvf_row_cost = 1.0
    default_tvf_rows = 1000
    apply_fanout = 8
    # batch (vectorized) execution: per-row cost multiplier for operators
    # running batch-at-a-time — the amortised interpreter dispatch
    batch_cost_factor = 0.4
    # columnstore access: rows decode in bulk from (cached) segment
    # vectors, so the per-row charge undercuts the heap's
    column_scan_row_cost = 0.6
    # evaluating one pushed conjunct per surviving row (encoded
    # selection: once per dictionary entry / RLE run, then membership)
    pushed_predicate_row_cost = 0.05
    # segment-at-a-time aggregation never materialises row tuples
    encoded_agg_row_cost = 0.6
    # pushing a conjunct whose selectivity exceeds this filters (almost)
    # nothing: every segment still reads, but the scan now builds a
    # positions list per segment — pricier than the compiled residual
    columnstore_push_threshold = 0.95

    #: feedback-driven selectivity memory (see
    #: :class:`..statistics.SelectivityMemory`); None = statistics only
    selectivity_memory = None

    def __init__(self, **overrides: float):
        for name, value in overrides.items():
            if not hasattr(type(self), name):
                raise TypeError(f"unknown cost constant {name!r}")
            setattr(self, name, value)

    # -- selectivity ---------------------------------------------------------

    def conjunct_selectivity(self, conjunct: Expr, table=None) -> float:
        """Estimated fraction of rows satisfying one conjunct over
        ``table``: the statistical estimate, except where the optimizer
        would fall back on a default magic number *and* the selectivity
        memory has observed this (literal-masked) predicate running —
        badly-wrong blind guesses self-correct on the next compile,
        while histogram/MCV estimates stay value-sensitive so parameter
        sniffing keeps working."""
        estimate = self._statistical_selectivity(conjunct, table)
        memory = self.selectivity_memory
        if memory is None or table is None:
            return estimate
        if self._stats_informed(conjunct, table):
            return estimate
        name = getattr(getattr(table, "schema", None), "name", "")
        if not name:
            return estimate
        observed = memory.lookup(name, expression_to_sql(conjunct))
        return estimate if observed is None else observed

    @staticmethod
    def _stats_informed(conjunct: Expr, table) -> bool:
        """Did column statistics (not a default constant) drive the
        estimate for this conjunct shape?"""
        stats: Optional[TableStats] = getattr(table, "statistics", None)
        if stats is None:
            return False

        def has(ref: Expr) -> bool:
            return (
                isinstance(ref, ColumnRef)
                and stats.column(ref.name) is not None
            )

        comparison = _column_comparison(conjunct)
        if comparison is not None:
            return has(comparison[0])
        if isinstance(conjunct, (Between, InList, IsNull)):
            return has(conjunct.operand)
        return False

    def _statistical_selectivity(self, conjunct: Expr, table=None) -> float:
        """The purely statistics-driven estimate (may be a default)."""
        stats: Optional[TableStats] = (
            getattr(table, "statistics", None) if table is not None else None
        )

        def column_stats(ref: ColumnRef):
            return stats.column(ref.name) if stats is not None else None

        comparison = _column_comparison(conjunct)
        if comparison is not None:
            ref, op, value = comparison
            col = column_stats(ref)
            if op == "=":
                if col is not None:
                    return col.eq_selectivity(value)
                return DEFAULT_EQ_SELECTIVITY
            if op in ("<>", "!="):
                eq = (
                    col.eq_selectivity(value)
                    if col is not None
                    else DEFAULT_EQ_SELECTIVITY
                )
                return max(1.0 - eq, 0.0)
            if col is not None:
                if op in ("<", "<="):
                    return col.range_selectivity(
                        hi=value, hi_inclusive=(op == "<=")
                    )
                return col.range_selectivity(
                    lo=value, lo_inclusive=(op == ">=")
                )
            return DEFAULT_RANGE_SELECTIVITY
        if isinstance(conjunct, Between):
            if isinstance(conjunct.operand, ColumnRef) and isinstance(
                conjunct.low, Literal
            ) and isinstance(conjunct.high, Literal):
                col = column_stats(conjunct.operand)
                if col is not None:
                    return col.range_selectivity(
                        lo=conjunct.low.value, hi=conjunct.high.value
                    )
            return DEFAULT_RANGE_SELECTIVITY
        if isinstance(conjunct, InList):
            if isinstance(conjunct.operand, ColumnRef) and all(
                isinstance(item, Literal) for item in conjunct.items
            ):
                col = column_stats(conjunct.operand)
                if col is not None:
                    total = sum(
                        col.eq_selectivity(item.value)
                        for item in conjunct.items
                    )
                    return min(total, 1.0)
            return min(
                len(conjunct.items) * DEFAULT_EQ_SELECTIVITY, 1.0
            )
        if isinstance(conjunct, Like):
            return DEFAULT_LIKE_SELECTIVITY
        if isinstance(conjunct, IsNull):
            if isinstance(conjunct.operand, ColumnRef):
                col = column_stats(conjunct.operand)
                if col is not None and col.n_rows:
                    null_fraction = col.n_nulls / col.n_rows
                    return (
                        1.0 - null_fraction
                        if conjunct.negated
                        else null_fraction
                    )
            return 0.9 if conjunct.negated else 0.1
        if isinstance(conjunct, BinaryOp) and conjunct.op.upper() == "OR":
            left = self.conjunct_selectivity(conjunct.left, table)
            right = self.conjunct_selectivity(conjunct.right, table)
            return min(left + right - left * right, 1.0)
        return DEFAULT_SELECTIVITY

    # -- cardinality ---------------------------------------------------------

    def scan_output(self, table, conjuncts: Sequence[Expr]) -> int:
        """Rows a scan of ``table`` delivers after ``conjuncts``.

        Equality on every column of the clustered key pins the estimate
        at exactly one row (key uniqueness beats any histogram)."""
        rows = table.row_count
        if not conjuncts:
            return rows
        schema = table.schema
        if not schema.heap and schema.primary_key:
            bound = set(equality_column_names(conjuncts))
            if all(c.lower() in bound for c in schema.primary_key):
                return 1
        selectivity = 1.0
        for conjunct in conjuncts:
            selectivity *= self.conjunct_selectivity(conjunct, table)
        return max(int(round(rows * selectivity)), 1)

    def seek_rows(
        self,
        table,
        bound: Sequence[Tuple[str, Any]],
        full_key: bool,
    ) -> int:
        """Rows an equality seek on ``bound`` (column, value) pairs
        delivers; a fully-bound unique key is exactly one row."""
        if full_key:
            return 1
        stats: Optional[TableStats] = getattr(table, "statistics", None)
        selectivity = 1.0
        for name, value in bound:
            col = stats.column(name) if stats is not None else None
            if col is not None:
                selectivity *= col.eq_selectivity(value)
            else:
                selectivity *= DEFAULT_EQ_SELECTIVITY
        return max(int(round(table.row_count * selectivity)), 1)

    def filter_output(
        self, input_rows: int, conjuncts: Sequence[Expr], table=None
    ) -> int:
        selectivity = 1.0
        for conjunct in conjuncts:
            selectivity *= self.conjunct_selectivity(conjunct, table)
        return max(int(round(input_rows * selectivity)), 1)

    def join_rows(
        self,
        left_rows: int,
        right_rows: int,
        key_ndvs: Sequence[Optional[int]],
    ) -> int:
        """Equi-join output estimate: |L| * |R| / max(ndv) per key pair
        when distinct counts are known, else the containment-free
        fallback max(|L|, |R|)."""
        known = [ndv for ndv in key_ndvs if ndv]
        if not known:
            return max(left_rows, right_rows)
        estimate = float(left_rows) * float(right_rows)
        for ndv in known:
            estimate /= max(ndv, 1)
        return max(int(round(estimate)), 1)

    def group_rows(
        self, input_rows: int, key_ndvs: Sequence[Optional[int]]
    ) -> int:
        """Aggregate output estimate: the product of group-key distinct
        counts, capped by the input (unknown keys guess 10 values)."""
        if input_rows <= 0:
            return 1
        if not key_ndvs:
            return 1  # scalar aggregate
        groups = 1.0
        for ndv in key_ndvs:
            groups *= ndv if ndv else 10
        return max(min(int(round(groups)), input_rows), 1)

    # -- decisions -----------------------------------------------------------

    def seek_cost(self, rows: int, secondary: bool = False) -> float:
        per_row = self.seek_row_cost + (
            self.bookmark_lookup_cost if secondary else 0.0
        )
        return self.seek_descend_cost + rows * per_row

    def scan_filter_cost(self, table_rows: int, n_conjuncts: int) -> float:
        cost = table_rows * self.scan_row_cost
        if n_conjuncts:
            cost += table_rows * self.filter_row_cost
        return cost

    def prefer_merge_join(self, left_rows: int, right_rows: int) -> bool:
        merge = (left_rows + right_rows) * self.merge_row_cost
        hash_cost = (
            right_rows * self.hash_build_row_cost
            + left_rows * self.hash_probe_row_cost
        )
        return merge <= hash_cost

    def worth_pushing(self, selectivity: float) -> bool:
        """Should one conjunct move into the column scan (encoded
        evaluation) rather than stay in the residual row filter?"""
        return selectivity <= self.columnstore_push_threshold

    def encoded_agg_wins(self, input_rows: int, dop: int) -> bool:
        """Encoded (segment-at-a-time) aggregation vs the parallel
        exchange plan: the exchange repartitions *materialised* rows,
        paying its startup cost plus per-row repartitioning the encoded
        path never does — at the defaults the encoded plan prices below
        the exchange at every input size."""
        encoded = input_rows * self.encoded_agg_row_cost
        parallel = (
            self.exchange_startup_cost
            + input_rows * self.repartition_row_cost
            + input_rows * self.transport_row_cost
            + input_rows * self.agg_row_cost / max(dop, 1)
        )
        return encoded <= parallel

    def columnstore_scan_cost(self, op) -> float:
        """Price a column scan by the segments its zone maps keep: the
        skipped fraction of the table is never decoded at all."""
        table_rows = op.table.row_count
        read, skipped = op.store.prune_estimate(op.predicates)
        total = read + skipped
        fraction = (read / total) if total else 1.0
        rows_scanned = table_rows * fraction
        return rows_scanned * (
            self.column_scan_row_cost
            + len(op.predicates) * self.pushed_predicate_row_cost
        )

    def parallel_agg_wins(self, input_rows: int, dop: int) -> bool:
        """Does the exchange-based parallel aggregation price below the
        serial hash aggregate for this input size?"""
        if dop <= 1:
            return False
        serial = input_rows * self.agg_row_cost
        parallel = (
            self.exchange_startup_cost
            + input_rows * self.repartition_row_cost
            + input_rows * self.transport_row_cost
            + input_rows * self.agg_row_cost / dop
        )
        return parallel < serial

    # -- plan annotation -----------------------------------------------------

    def annotate(self, op):
        """Fill ``est_rows`` / ``est_cost`` on every node of a physical
        plan (bottom-up; respects estimates the planner already set at
        construction time from predicate statistics)."""
        from ..executor import (
            ClusteredIndexScan,
            ClusteredIndexSeek,
            ColumnStoreScan,
            CrossApply,
            Distinct,
            EncodedAggregate,
            Filter,
            FusedFilterProject,
            HashAggregate,
            HashJoin,
            MaterializedResult,
            MergeJoin,
            NestedLoopJoin,
            ParallelHashAggregate,
            Project,
            RowNumberWindow,
            SecondaryIndexSeek,
            Sort,
            StreamAggregate,
            TableScan,
            Top,
            TvfScan,
        )

        kids = list(op.children())
        for kid in kids:
            self.annotate(kid)
        child_rows = [kid.est_rows for kid in kids]
        first = child_rows[0] if child_rows else 0

        rows = op.est_rows
        if rows is None:
            if isinstance(op, (TableScan, ClusteredIndexScan, ColumnStoreScan)):
                rows = op.table.row_count
            elif isinstance(op, (ClusteredIndexSeek, SecondaryIndexSeek)):
                rows = max(op.table.row_count // 10, 1)
            elif isinstance(op, (Filter, FusedFilterProject)):
                rows = max(first // 2, 1)
            elif isinstance(op, (HashJoin, MergeJoin, NestedLoopJoin)):
                rows = max(child_rows[0], child_rows[1])
            elif isinstance(op, CrossApply):
                rows = first * self.apply_fanout
            elif isinstance(op, TvfScan):
                rows = self.default_tvf_rows
            elif isinstance(op, MaterializedResult):
                rows = len(op)
            elif isinstance(
                op, (HashAggregate, StreamAggregate, ParallelHashAggregate)
            ):
                rows = 1 if not op.group_fns else max(first, 1)
            elif isinstance(op, Top):
                rows = min(op.n, first) if kids else op.n
            elif kids:
                rows = max(child_rows)
            else:
                rows = self.default_tvf_rows
            op.est_rows = rows

        if isinstance(op, ColumnStoreScan):
            self_cost = self.columnstore_scan_cost(op)
        elif isinstance(op, TableScan):
            self_cost = op.table.row_count * self.scan_row_cost
        elif isinstance(op, ClusteredIndexScan):
            self_cost = op.table.row_count * self.ordered_scan_row_cost
        elif isinstance(op, ClusteredIndexSeek):
            self_cost = self.seek_cost(rows)
        elif isinstance(op, SecondaryIndexSeek):
            self_cost = self.seek_cost(rows, secondary=True)
        elif isinstance(op, FusedFilterProject):
            self_cost = first * (self.filter_row_cost + self.project_row_cost)
        elif isinstance(op, Filter):
            self_cost = first * self.filter_row_cost
        elif isinstance(op, HashJoin):
            self_cost = (
                child_rows[1] * self.hash_build_row_cost
                + child_rows[0] * self.hash_probe_row_cost
                + rows * self.output_row_cost
            )
        elif isinstance(op, MergeJoin):
            self_cost = (
                (child_rows[0] + child_rows[1]) * self.merge_row_cost
                + rows * self.output_row_cost
            )
        elif isinstance(op, NestedLoopJoin):
            self_cost = (
                child_rows[0] * child_rows[1] * self.nested_loop_row_cost
            )
        elif isinstance(op, CrossApply):
            self_cost = rows * self.tvf_row_cost
        elif isinstance(op, TvfScan):
            self_cost = rows * self.tvf_row_cost
        elif isinstance(op, (Sort, RowNumberWindow)):
            self_cost = (
                first * math.log2(first + 1) * self.sort_row_factor
            )
        elif isinstance(op, ParallelHashAggregate):
            self_cost = (
                self.exchange_startup_cost
                + first * self.repartition_row_cost
                + first * self.transport_row_cost
                + first * self.agg_row_cost / max(op.dop, 1)
                + rows * self.output_row_cost
            )
        elif isinstance(op, EncodedAggregate):
            # subclass check must precede the HashAggregate branch
            self_cost = (
                first * self.encoded_agg_row_cost
                + rows * self.output_row_cost
            )
        elif isinstance(op, HashAggregate):
            self_cost = (
                first * self.agg_row_cost + rows * self.output_row_cost
            )
        elif isinstance(op, StreamAggregate):
            self_cost = first * self.stream_agg_row_cost
        elif isinstance(op, Distinct):
            self_cost = first * self.agg_row_cost
        elif isinstance(op, Project):
            self_cost = first * self.project_row_cost
        else:
            self_cost = 0.0
        # batch-mode operators amortise the per-row interpreter dispatch
        # over whole batches; modes are selected after all access-path /
        # join / parallelism decisions, so the discount shows in EXPLAIN
        # without steering those choices
        if getattr(op, "execution_mode", "row") == "batch":
            self_cost *= self.batch_cost_factor
        op.est_cost = self_cost + sum(
            kid.est_cost or 0.0 for kid in kids
        )
        return op
