"""The cost-based optimizer layer.

Planning is split into two phases, the classic logical → physical
pipeline SQL Server's optimizer (which the paper leans on) runs:

- :mod:`.logical` — the logical plan IR the binder lowers a SELECT AST
  into (scan / filter / join / apply / aggregate / window / project
  nodes), independent of access paths and algorithms;
- :mod:`.rules` — rewrite rules over that IR: predicate pushdown,
  projection pruning, and cardinality-ordered join reordering;
- :mod:`.statistics` — table/column statistics (row counts, distinct
  counts, min/max, most-common values, equi-depth histograms) collected
  by ``UPDATE STATISTICS`` / ``ANALYZE`` and kept in the catalog;
- :mod:`.cost` — the cost model that prices physical alternatives
  (heap scan vs. seek, merge vs. hash join, stream vs. hash vs.
  parallel-exchange aggregation) from those statistics and annotates
  every physical operator with ``est. rows`` / ``cost`` for EXPLAIN.
"""

from .cost import CostModel
from .logical import (
    LogicalAggregate,
    LogicalApply,
    LogicalDistinct,
    LogicalFilter,
    LogicalGet,
    LogicalJoin,
    LogicalNode,
    LogicalProject,
    LogicalSort,
    LogicalTop,
    LogicalWindow,
    lower_select,
    render_logical,
)
from .rules import apply_rewrites
from .statistics import (
    ColumnStats,
    HistogramBucket,
    TableStats,
    collect_table_statistics,
)

__all__ = [
    "ColumnStats",
    "CostModel",
    "HistogramBucket",
    "LogicalAggregate",
    "LogicalApply",
    "LogicalDistinct",
    "LogicalFilter",
    "LogicalGet",
    "LogicalJoin",
    "LogicalNode",
    "LogicalProject",
    "LogicalSort",
    "LogicalTop",
    "LogicalWindow",
    "TableStats",
    "apply_rewrites",
    "collect_table_statistics",
    "lower_select",
    "render_logical",
]
