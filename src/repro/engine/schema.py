"""Table schemas: columns, keys, and constraints.

A :class:`TableSchema` is the logical description of a relation. The
storage layer consumes it to lay out rows; the planner consumes it to
resolve names and reason about ordering (clustered key) and uniqueness.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterable, Optional, Sequence, Tuple

from .errors import BindError, ConstraintViolation, TypeMismatchError
from .types import SqlType

#: table-level compression settings (mirrors SQL Server DATA_COMPRESSION)
COMPRESSION_NONE = "NONE"
COMPRESSION_ROW = "ROW"
COMPRESSION_PAGE = "PAGE"

#: storage engines (access methods); see repro.engine.storage.base
STORAGE_HEAP = "heap"
STORAGE_COLUMN = "column"


@dataclass(frozen=True)
class Column:
    """A named, typed column with NULL-ability and identity flags."""

    name: str
    sql_type: SqlType
    nullable: bool = True
    #: auto-incrementing synthetic key (SQL Server IDENTITY)
    identity: bool = False
    #: ROWGUIDCOL marker, required on FILESTREAM tables
    rowguidcol: bool = False

    def validate(self, value: Any, udt_codec=None) -> Any:
        if value is None:
            if not self.nullable:
                raise ConstraintViolation(
                    f"column {self.name!r} does not allow NULL"
                )
            return None
        try:
            return self.sql_type.validate(value)
        except TypeMismatchError as exc:
            raise TypeMismatchError(f"column {self.name!r}: {exc}") from exc


@dataclass(frozen=True)
class ForeignKey:
    """A foreign-key constraint: local columns reference a parent key."""

    columns: Tuple[str, ...]
    parent_table: str
    parent_columns: Tuple[str, ...]

    def __post_init__(self):
        if len(self.columns) != len(self.parent_columns):
            raise BindError("foreign key column count mismatch")


class TableSchema:
    """Logical schema of one table.

    Parameters
    ----------
    name:
        Table name (case-insensitive lookups, original case preserved).
    columns:
        Ordered column definitions.
    primary_key:
        Column names forming the primary key. The primary key doubles as
        the clustered index key unless ``heap=True``.
    foreign_keys:
        Referential constraints (checked on insert when enabled on the
        database).
    compression:
        ``NONE`` / ``ROW`` / ``PAGE`` storage compression.
    heap:
        Store rows in insertion order (no clustered index) even when a
        primary key exists.
    filestream_group:
        Name of the filegroup for FILESTREAM columns (cosmetic, mirrors
        the T-SQL syntax in the paper).
    storage:
        Access method storing the rows: ``"heap"`` (slotted pages, the
        default) or ``"column"`` (encoded columnar segments).
    segment_rows:
        Rows per sealed column-store segment (``WITH (SEGMENT_ROWS=n)``);
        None uses the engine default. Ignored by the heap.
    """

    def __init__(
        self,
        name: str,
        columns: Sequence[Column],
        primary_key: Sequence[str] = (),
        foreign_keys: Iterable[ForeignKey] = (),
        compression: str = COMPRESSION_NONE,
        heap: bool = False,
        filestream_group: Optional[str] = None,
        storage: str = STORAGE_HEAP,
        segment_rows: Optional[int] = None,
    ):
        if not columns:
            raise BindError(f"table {name!r} must have at least one column")
        self.name = name
        self.columns: Tuple[Column, ...] = tuple(columns)
        self._by_name = {}
        for i, col in enumerate(self.columns):
            key = col.name.lower()
            if key in self._by_name:
                raise BindError(f"duplicate column {col.name!r} in {name!r}")
            self._by_name[key] = i
        self.primary_key: Tuple[str, ...] = tuple(primary_key)
        for pk_col in self.primary_key:
            if pk_col.lower() not in self._by_name:
                raise BindError(
                    f"primary key column {pk_col!r} not in table {name!r}"
                )
        self.foreign_keys: Tuple[ForeignKey, ...] = tuple(foreign_keys)
        if compression not in (
            COMPRESSION_NONE,
            COMPRESSION_ROW,
            COMPRESSION_PAGE,
        ):
            raise BindError(f"unknown compression setting {compression!r}")
        self.compression = compression
        self.heap = heap or not self.primary_key
        self.filestream_group = filestream_group
        if storage not in (STORAGE_HEAP, STORAGE_COLUMN):
            raise BindError(f"unknown storage engine {storage!r}")
        self.storage = storage
        if segment_rows is not None and segment_rows < 2:
            raise BindError(
                f"SEGMENT_ROWS must be at least 2, got {segment_rows}"
            )
        self.segment_rows = segment_rows
        fs_cols = [c for c in self.columns if c.sql_type.filestream]
        if fs_cols and not any(c.rowguidcol for c in self.columns):
            raise BindError(
                f"table {name!r} has FILESTREAM columns but no ROWGUIDCOL"
            )
        if fs_cols and storage == STORAGE_COLUMN:
            raise BindError(
                f"table {name!r}: FILESTREAM columns require heap storage"
            )

    # -- lookups -------------------------------------------------------------

    def column_index(self, name: str) -> int:
        try:
            return self._by_name[name.lower()]
        except KeyError:
            raise BindError(
                f"unknown column {name!r} in table {self.name!r}"
            ) from None

    def column(self, name: str) -> Column:
        return self.columns[self.column_index(name)]

    def has_column(self, name: str) -> bool:
        return name.lower() in self._by_name

    @property
    def column_names(self) -> Tuple[str, ...]:
        return tuple(c.name for c in self.columns)

    @property
    def key_indexes(self) -> Tuple[int, ...]:
        """Positions of the primary-key columns, in key order."""
        return tuple(self.column_index(c) for c in self.primary_key)

    def key_of(self, row: Sequence[Any]) -> Tuple[Any, ...]:
        """Extract the primary-key tuple from a full row."""
        return tuple(row[i] for i in self.key_indexes)

    # -- row validation --------------------------------------------------------

    def validate_row(self, row: Sequence[Any], udt_codecs=None) -> Tuple[Any, ...]:
        """Validate a full-width row, returning the canonical tuple."""
        if len(row) != len(self.columns):
            raise TypeMismatchError(
                f"table {self.name!r} expects {len(self.columns)} values, "
                f"got {len(row)}"
            )
        return tuple(
            col.validate(value) for col, value in zip(self.columns, row)
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        cols = ", ".join(f"{c.name} {c.sql_type}" for c in self.columns)
        return f"TableSchema({self.name}: {cols})"


@dataclass
class TableStatistics:
    """Simple statistics maintained per table for the planner."""

    row_count: int = 0
    #: total bytes of row payload currently stored (post-compression)
    data_bytes: int = 0
    #: bytes the same rows would occupy uncompressed
    uncompressed_bytes: int = 0
    page_count: int = 0

    def on_insert(self, stored: int, uncompressed: int) -> None:
        self.row_count += 1
        self.data_bytes += stored
        self.uncompressed_bytes += uncompressed

    def on_delete(self, stored: int, uncompressed: int) -> None:
        self.row_count -= 1
        self.data_bytes -= stored
        self.uncompressed_bytes -= uncompressed
