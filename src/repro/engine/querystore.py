"""A persistent Query Store: normalised queries, interned plans, and
per-interval runtime statistics.

SQL Server 2016's Query Store is what makes a workload like the paper's
— the same level-1→3 queries re-planned and re-run for every lane —
operable: it keys history by *normalised* statement text, interns every
distinct plan a query has run with, and accumulates runtime statistics
per (query, plan, time interval), persisted inside the database itself.
This module reproduces that shape:

- :func:`normalize_statement` canonicalises SQL through the engine's own
  lexer — literals become ``?`` parameter markers, keywords uppercase,
  whitespace collapses — so ``WHERE r_id = 3`` and ``where r_id=7``
  share one query store entry;
- plans are interned by a structural signature (the operator tree's
  static labels), so a plan change after ``UPDATE STATISTICS`` shows up
  as a second plan row under the same query — the raw material for the
  ROADMAP's plan-cache / plan-regression work;
- runtime stats accumulate per ``interval_seconds`` bucket (SQL
  Server's ``runtime_stats_interval``), recording executions, wall
  clock, rows, IO/batch/segment counters, last DOP, and *estimated vs
  actual* rows — the feedback signal adaptive optimization needs;
- the whole store round-trips to JSON (``querystore.json`` alongside
  the FILESTREAM filegroup), so history survives a database restart.

Surfaced as ``sys_dm_query_store_query`` / ``_plan`` /
``_runtime_stats`` virtual views (see :mod:`repro.engine.metrics`).
"""

from __future__ import annotations

import json
import re
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from .sql.lexer import EOF, KEYWORD, NUMBER, STRING, tokenize

#: sentinel for "no estimate available" in integer DMV columns
_NO_ESTIMATE = -1


def normalize_statement(sql: str) -> str:
    """Canonical form of a statement for query-store keying.

    Tokenises with the engine lexer and re-joins: numeric and string
    literals become ``?``, keywords uppercase, comments and whitespace
    differences vanish. Unlexable text (CLI pseudo-statements, foreign
    dialects) falls back to whitespace collapsing."""
    try:
        tokens = tokenize(sql)
    except Exception:  # noqa: BLE001 - fall back, never fail the caller
        return " ".join(sql.split())
    parts: List[str] = []
    for token in tokens:
        if token.type == EOF:
            break
        if token.type in (NUMBER, STRING):
            parts.append("?")
        elif token.type == KEYWORD:
            parts.append(token.value.upper())
        else:
            parts.append(token.value)
    return " ".join(parts)


_LITERAL_IN_LABEL = re.compile(r"'[^']*'|\b\d+(?:\.\d+)?\b")


def mask_literals(text: str) -> str:
    """Replace string/number literals in free text (operator labels,
    predicate SQL) with ``?`` — the label-level analogue of
    :func:`normalize_statement`, shared by plan signatures, the plan
    cache, and the optimizer's selectivity memory."""
    return _LITERAL_IN_LABEL.sub("?", text)


def statement_shape(text: str) -> str:
    """Whitespace-collapsed, literal-masked rendition of raw SQL.

    Cheaper than :func:`normalize_statement` (one regex pass, no
    lexing) and *finer*: keyword case and comments survive. Every
    rendition of one parameterized statement shape — same text, fresh
    literals — collapses onto the same shape string, which is what the
    plan cache's parse-free hit path and the query store's
    normalization memo key on."""
    return " ".join(_LITERAL_IN_LABEL.sub("?", text).split())


def literal_values(text: str) -> Optional[List[Any]]:
    """The literal values of raw SQL in text order, converted exactly
    as the parser converts them (``.`` → float, else int; strings
    unescaped) — or None when a literal fails conversion.

    Only sound for texts whose every literal is a plain regex-visible
    form: the plan cache verifies that property per statement shape at
    registration time before trusting this extractor on the hit path
    (exponents, doubled-quote escapes, and folded signs all change the
    masked shape or fail the registration check, so they never reach
    the fast path)."""
    values: List[Any] = []
    for match in _LITERAL_IN_LABEL.finditer(text):
        token = match.group()
        if token[0] == "'":
            values.append(token[1:-1])
        else:
            try:
                values.append(float(token) if "." in token else int(token))
            except ValueError:
                return None
    return values


def plan_signature(op: Any) -> Tuple[Tuple[int, str], ...]:
    """Structural identity of a physical plan: the tree of operator
    labels with literals masked, depth-tagged. Two executions share a
    plan_id iff their trees label identically — seek predicates like
    ``a = (3,)`` must not fragment the store into one plan per
    parameter value, so numbers and strings inside labels become ``?``
    (the same treatment :func:`normalize_statement` gives query text)."""
    parts: List[Tuple[int, str]] = []

    def walk(node: Any, depth: int) -> None:
        label, _children = node.explain_node()
        parts.append((depth, _LITERAL_IN_LABEL.sub("?", label)))
        for child in node.children():
            walk(child, depth + 1)

    walk(op, 0)
    return tuple(parts)


def _iso(epoch: Optional[float]) -> str:
    if epoch is None:
        return ""
    return time.strftime("%Y-%m-%dT%H:%M:%S", time.gmtime(epoch))


# ---------------------------------------------------------------------------
# store entries
# ---------------------------------------------------------------------------


@dataclass
class StoredQuery:
    """One normalised query text."""

    query_id: int
    query_text: str
    statement_kind: str
    first_seen: float
    last_seen: float
    execution_count: int = 0


@dataclass
class StoredPlan:
    """One interned plan for a query."""

    plan_id: int
    query_id: int
    plan_text: str
    est_rows: Optional[int]
    first_seen: float
    last_dop: int = 1
    execution_count: int = 0


@dataclass
class RuntimeStats:
    """Accumulated runtime statistics for (query, plan, interval)."""

    query_id: int
    plan_id: int
    interval_id: int
    interval_start: float
    executions: int = 0
    total_elapsed: float = 0.0
    last_elapsed: float = 0.0
    total_rows: int = 0
    last_rows: int = 0
    last_est_rows: Optional[int] = None
    last_actual_rows: int = 0
    total_logical_reads: int = 0
    total_pages_written: int = 0
    total_batch_reads: int = 0
    total_segments_read: int = 0
    total_segments_skipped: int = 0
    last_dop: int = 1

    def record(
        self,
        elapsed: float,
        rows: int,
        io: Dict[str, int],
        dop: int,
        est_rows: Optional[int],
    ) -> None:
        self.executions += 1
        self.total_elapsed += elapsed
        self.last_elapsed = elapsed
        self.total_rows += rows
        self.last_rows = rows
        self.last_est_rows = est_rows
        self.last_actual_rows = rows
        self.total_logical_reads += io.get("pages_read", 0) + io.get(
            "index_node_visits", 0
        )
        self.total_pages_written += io.get("pages_written", 0)
        self.total_batch_reads += io.get("batch_reads", 0)
        self.total_segments_read += io.get("segments_read", 0)
        self.total_segments_skipped += io.get("segments_skipped", 0)
        self.last_dop = dop


@dataclass
class _CaptureOutcome:
    """What one :meth:`QueryStore.record` call interned (for tests and
    the slow-query log)."""

    query: StoredQuery
    plan: Optional[StoredPlan]
    runtime: RuntimeStats


# ---------------------------------------------------------------------------
# the store
# ---------------------------------------------------------------------------


class QueryStore:
    """Per-database query store with JSON persistence.

    ``retain`` bounds distinct normalised queries (oldest evicted with
    their plans and runtime rows); ``interval_seconds`` is the runtime
    stats bucketing window (SQL Server defaults to 60 minutes)."""

    def __init__(
        self,
        retain: int = 200,
        interval_seconds: float = 3600.0,
        checkpoint_interval: int = 256,
    ):
        self.enabled = True
        self.retain = retain
        self.interval_seconds = float(interval_seconds)
        #: persist every N captured statements (crash safety: a killed
        #: process loses at most one interval's feedback data); 0 turns
        #: periodic checkpointing off (save on close only)
        self.checkpoint_interval = int(checkpoint_interval)
        self.records_since_checkpoint = 0
        self._queries: Dict[str, StoredQuery] = {}
        self._plans: Dict[Tuple[int, Tuple], StoredPlan] = {}
        self._runtime: Dict[Tuple[int, int, int], RuntimeStats] = {}
        self._next_query_id = 1
        self._next_plan_id = 1
        #: raw SQL -> normalised text memo (hot statements re-execute
        #: verbatim, so normalisation is paid once per distinct text)
        self._norm_cache: Dict[str, str] = {}
        #: regex-masked shape -> normalised text memo. Parameterized
        #: traffic repeats a statement *shape* with fresh literals, so
        #: the exact-text memo above always misses; masking literals
        #: with one regex pass collapses every rendition of a shape
        #: onto a single key and skips re-tokenising it. Sound because
        #: two texts can only share a masked form when they differ in
        #: literal content alone — content the lexer masks to ``?``
        #: itself — so a shared masked key implies a shared normal form.
        self._shape_cache: Dict[str, str] = {}
        self.dirty = False

    # -- capture -----------------------------------------------------------------

    def normalize(self, sql: str) -> str:
        cached = self._norm_cache.get(sql)
        if cached is None:
            shape = statement_shape(sql)
            cached = self._shape_cache.get(shape)
            if cached is None:
                cached = normalize_statement(sql)
                if len(self._shape_cache) > 4 * self.retain:
                    self._shape_cache.clear()
                self._shape_cache[shape] = cached
            if len(self._norm_cache) > 4 * self.retain:
                self._norm_cache.clear()
            self._norm_cache[sql] = cached
        return cached

    def record(
        self,
        sql: str,
        kind: str,
        elapsed: float,
        rows: int,
        io: Optional[Dict[str, int]] = None,
        dop: int = 1,
        plan: Any = None,
        now: Optional[float] = None,
    ) -> Optional[_CaptureOutcome]:
        """Capture one execution. ``plan`` is the executed physical
        operator tree when the statement had one (SELECT / EXPLAIN
        ANALYZE); plan-less statements land under plan_id 0."""
        if not self.enabled:
            return None
        if now is None:
            now = time.time()
        text = self.normalize(sql)
        query = self._queries.get(text)
        if query is None:
            if len(self._queries) >= self.retain:
                self._evict_oldest()
            query = StoredQuery(
                query_id=self._next_query_id,
                query_text=text,
                statement_kind=kind,
                first_seen=now,
                last_seen=now,
            )
            self._next_query_id += 1
            self._queries[text] = query
        query.execution_count += 1
        query.last_seen = now

        stored_plan: Optional[StoredPlan] = None
        plan_id = 0
        est_rows: Optional[int] = None
        if plan is not None:
            signature = plan_signature(plan)
            est_rows = getattr(plan, "est_rows", None)
            stored_plan = self._plans.get((query.query_id, signature))
            if stored_plan is None:
                stored_plan = StoredPlan(
                    plan_id=self._next_plan_id,
                    query_id=query.query_id,
                    plan_text=plan.explain(),
                    est_rows=est_rows,
                    first_seen=now,
                )
                self._next_plan_id += 1
                self._plans[(query.query_id, signature)] = stored_plan
            stored_plan.execution_count += 1
            stored_plan.last_dop = dop
            stored_plan.est_rows = est_rows
            plan_id = stored_plan.plan_id

        interval_id = int(now // self.interval_seconds)
        key = (query.query_id, plan_id, interval_id)
        runtime = self._runtime.get(key)
        if runtime is None:
            runtime = RuntimeStats(
                query_id=query.query_id,
                plan_id=plan_id,
                interval_id=interval_id,
                interval_start=interval_id * self.interval_seconds,
            )
            self._runtime[key] = runtime
        runtime.record(elapsed, rows, io or {}, dop, est_rows)
        self.dirty = True
        self.records_since_checkpoint += 1
        return _CaptureOutcome(query=query, plan=stored_plan, runtime=runtime)

    def maybe_checkpoint(self, path: Any) -> bool:
        """Save to ``path`` when ``checkpoint_interval`` captures have
        accumulated since the last save; returns True when it saved."""
        if (
            self.checkpoint_interval <= 0
            or not self.dirty
            or self.records_since_checkpoint < self.checkpoint_interval
        ):
            return False
        self.save(path)
        return True

    def _evict_oldest(self) -> None:
        """Age out the least-recently-interned query and its history."""
        oldest_text = next(iter(self._queries))
        victim = self._queries.pop(oldest_text)
        self._plans = {
            key: plan
            for key, plan in self._plans.items()
            if plan.query_id != victim.query_id
        }
        self._runtime = {
            key: stats
            for key, stats in self._runtime.items()
            if stats.query_id != victim.query_id
        }

    def clear(self) -> None:
        self._queries.clear()
        self._plans.clear()
        self._runtime.clear()
        self.dirty = True

    # -- reading -----------------------------------------------------------------

    def queries(self) -> List[StoredQuery]:
        return list(self._queries.values())

    def find_query(self, sql: str) -> Optional[StoredQuery]:
        return self._queries.get(self.normalize(sql))

    def plans_for(self, query_id: int) -> List[StoredPlan]:
        return [p for p in self._plans.values() if p.query_id == query_id]

    def runtime_for(
        self, query_id: int, plan_id: Optional[int] = None
    ) -> List[RuntimeStats]:
        return [
            r
            for r in self._runtime.values()
            if r.query_id == query_id
            and (plan_id is None or r.plan_id == plan_id)
        ]

    # -- DMV row sources ---------------------------------------------------------

    def query_rows(self) -> List[Tuple[Any, ...]]:
        rows = []
        for q in self._queries.values():
            plan_count = sum(
                1 for p in self._plans.values() if p.query_id == q.query_id
            )
            rows.append(
                (
                    q.query_id,
                    q.query_text,
                    q.statement_kind,
                    _iso(q.first_seen),
                    _iso(q.last_seen),
                    q.execution_count,
                    plan_count,
                )
            )
        return rows

    def plan_rows(self) -> List[Tuple[Any, ...]]:
        return [
            (
                p.plan_id,
                p.query_id,
                p.plan_text,
                _NO_ESTIMATE if p.est_rows is None else int(p.est_rows),
                _iso(p.first_seen),
                p.last_dop,
                p.execution_count,
            )
            for p in self._plans.values()
        ]

    def runtime_rows(self) -> List[Tuple[Any, ...]]:
        rows = []
        for r in self._runtime.values():
            avg = r.total_elapsed / r.executions if r.executions else 0.0
            rows.append(
                (
                    r.query_id,
                    r.plan_id,
                    r.interval_id,
                    _iso(r.interval_start),
                    r.executions,
                    round(r.total_elapsed * 1000.0, 3),
                    round(avg * 1000.0, 3),
                    round(r.last_elapsed * 1000.0, 3),
                    r.total_rows,
                    (
                        _NO_ESTIMATE
                        if r.last_est_rows is None
                        else int(r.last_est_rows)
                    ),
                    r.last_actual_rows,
                    r.total_logical_reads,
                    r.total_batch_reads,
                    r.total_segments_read,
                    r.total_segments_skipped,
                    r.last_dop,
                )
            )
        return rows

    # -- persistence -------------------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        return {
            "version": 1,
            "next_query_id": self._next_query_id,
            "next_plan_id": self._next_plan_id,
            "interval_seconds": self.interval_seconds,
            "queries": [vars(q) for q in self._queries.values()],
            "plans": [
                {"signature": list(map(list, sig)), **vars(plan)}
                for (qid, sig), plan in self._plans.items()
            ],
            "runtime": [vars(r) for r in self._runtime.values()],
        }

    def from_dict(self, payload: Dict[str, Any]) -> None:
        self._queries = {}
        self._plans = {}
        self._runtime = {}
        self._next_query_id = int(payload.get("next_query_id", 1))
        self._next_plan_id = int(payload.get("next_plan_id", 1))
        self.interval_seconds = float(
            payload.get("interval_seconds", self.interval_seconds)
        )
        for entry in payload.get("queries", []):
            query = StoredQuery(**entry)
            self._queries[query.query_text] = query
        for entry in payload.get("plans", []):
            entry = dict(entry)
            signature = tuple(
                (int(depth), label) for depth, label in entry.pop("signature")
            )
            plan = StoredPlan(**entry)
            self._plans[(plan.query_id, signature)] = plan
        for entry in payload.get("runtime", []):
            stats = RuntimeStats(**entry)
            self._runtime[
                (stats.query_id, stats.plan_id, stats.interval_id)
            ] = stats
        self.dirty = False

    def save(self, path: Any) -> None:
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(self.to_dict(), handle, indent=1)
            handle.write("\n")
        self.dirty = False
        self.records_since_checkpoint = 0

    def load(self, path: Any) -> None:
        with open(path, "r", encoding="utf-8") as handle:
            self.from_dict(json.load(handle))
