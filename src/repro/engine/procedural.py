"""Stored procedures: interpreted (T-SQL-style) and compiled (CLR-style).

Section 5.2 of the paper compares five ways of scanning a short-read
file, and the slowest by far is the *interpreted* T-SQL stored procedure
("several minutes" against ~5 s for a command-line program). The gap is
architectural: T-SQL executes statement by statement, re-evaluating
expression trees per row, while a CLR procedure runs compiled code.

This module reproduces both execution models:

- :class:`InterpretedProcedure` — a tiny procedural language (DECLARE /
  SET / IF / WHILE / file cursors) executed by a tree-walking
  interpreter that re-evaluates expression ASTs on every iteration, the
  way the T-SQL batch executor does;
- compiled procedures — plain Python callables registered on the
  database (the stand-in for CLR stored procedures), which read the same
  FILESTREAM data through :meth:`FileStreamStore.open_stream` or the
  chunked ``get_bytes`` API.
"""

from __future__ import annotations

import uuid
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from .errors import ExecutionError
from .expressions import (
    Between,
    BinaryOp,
    Case,
    ColumnRef,
    Expr,
    FuncCall,
    InList,
    IsNull,
    Like,
    Literal,
    UnaryOp,
    _BUILTINS,
    like_match,
)

# ---------------------------------------------------------------------------
# statements
# ---------------------------------------------------------------------------


@dataclass
class Declare:
    """``DECLARE @name = <initial value>``"""

    name: str
    initial: Any = None


@dataclass
class Assign:
    """``SET @name = <expr>`` (expr over variables, re-evaluated each time)"""

    name: str
    expr: Expr


@dataclass
class If:
    condition: Expr
    then_body: List[Any]
    else_body: List[Any] = field(default_factory=list)


@dataclass
class While:
    condition: Expr
    body: List[Any]


@dataclass
class Break:
    pass


@dataclass
class OpenLineCursor:
    """Open a cursor reading a FILESTREAM blob line by line.

    ``guid_var`` names a variable holding the blob GUID; lines land in
    ``@<cursor>_line`` with ``@<cursor>_status`` = 1 while rows remain.
    """

    cursor: str
    guid_var: str


@dataclass
class FetchLine:
    cursor: str


@dataclass
class CloseCursor:
    cursor: str


@dataclass
class Return:
    expr: Optional[Expr] = None


Statement = Any


@dataclass
class InterpretedProcedure:
    """A named procedure executed by the tree-walking interpreter."""

    name: str
    params: Tuple[str, ...]
    body: List[Statement]


# ---------------------------------------------------------------------------
# the interpreter
# ---------------------------------------------------------------------------


class _ReturnSignal(Exception):
    def __init__(self, value: Any):
        self.value = value


class _BreakSignal(Exception):
    pass


class Interpreter:
    """Executes :class:`InterpretedProcedure` bodies.

    Deliberately *not* compiled: every expression evaluation walks the
    AST and resolves variables through a dict, per iteration — this is
    the performance model of an interpreted batch language and the slow
    comparator the Section 5.2 benchmark measures.
    """

    def __init__(self, database):
        self.database = database

    def call(self, procedure: InterpretedProcedure, *args: Any) -> Any:
        if len(args) != len(procedure.params):
            raise ExecutionError(
                f"procedure {procedure.name!r} expects "
                f"{len(procedure.params)} arguments, got {len(args)}"
            )
        env: Dict[str, Any] = dict(zip(procedure.params, args))
        cursors: Dict[str, Any] = {}
        try:
            self._run_block(procedure.body, env, cursors)
        except _ReturnSignal as signal:
            return signal.value
        finally:
            for handle in cursors.values():
                handle.close()
        return None

    # -- statement execution -----------------------------------------------------------

    def _run_block(self, body: Sequence[Statement], env, cursors) -> None:
        for stmt in body:
            self._run_statement(stmt, env, cursors)

    def _run_statement(self, stmt: Statement, env, cursors) -> None:
        if isinstance(stmt, Declare):
            env[stmt.name] = stmt.initial
        elif isinstance(stmt, Assign):
            env[stmt.name] = self.eval_expr(stmt.expr, env)
        elif isinstance(stmt, If):
            if self.eval_expr(stmt.condition, env) is True:
                self._run_block(stmt.then_body, env, cursors)
            else:
                self._run_block(stmt.else_body, env, cursors)
        elif isinstance(stmt, While):
            try:
                while self.eval_expr(stmt.condition, env) is True:
                    self._run_block(stmt.body, env, cursors)
            except _BreakSignal:
                pass
        elif isinstance(stmt, Break):
            raise _BreakSignal()
        elif isinstance(stmt, OpenLineCursor):
            guid = env[stmt.guid_var]
            if isinstance(guid, (bytes, bytearray)):
                guid = uuid.UUID(bytes=bytes(guid))
            handle = self.database.filestream.open_stream(guid)
            cursors[stmt.cursor] = handle
            env[f"{stmt.cursor}_status"] = 1
            env[f"{stmt.cursor}_line"] = None
        elif isinstance(stmt, FetchLine):
            handle = cursors[stmt.cursor]
            raw = handle.readline()
            if raw:
                env[f"{stmt.cursor}_line"] = raw.decode("ascii").rstrip("\n")
                env[f"{stmt.cursor}_status"] = 1
            else:
                env[f"{stmt.cursor}_line"] = None
                env[f"{stmt.cursor}_status"] = 0
        elif isinstance(stmt, CloseCursor):
            handle = cursors.pop(stmt.cursor, None)
            if handle is not None:
                handle.close()
        elif isinstance(stmt, Return):
            value = self.eval_expr(stmt.expr, env) if stmt.expr else None
            raise _ReturnSignal(value)
        else:
            raise ExecutionError(f"unknown statement {type(stmt).__name__}")

    # -- expression evaluation (tree-walking, on purpose) -------------------------------

    def eval_expr(self, expr: Expr, env: Dict[str, Any]) -> Any:
        if isinstance(expr, Literal):
            return expr.value
        if isinstance(expr, ColumnRef):
            # variables are "columns" of the environment
            name = expr.name
            if name not in env:
                raise ExecutionError(f"undeclared variable {name!r}")
            return env[name]
        if isinstance(expr, BinaryOp):
            return self._eval_binary(expr, env)
        if isinstance(expr, UnaryOp):
            value = self.eval_expr(expr.operand, env)
            if expr.op == "NOT":
                return None if value is None else not value
            if expr.op == "-":
                return None if value is None else -value
            return value
        if isinstance(expr, FuncCall):
            args = [self.eval_expr(a, env) for a in expr.args]
            builtin = _BUILTINS.get(expr.name.lower())
            if builtin is not None:
                return builtin(*args)
            udf = self.database.catalog.functions.scalar(expr.name)
            if udf is not None:
                return udf(*args)
            raise ExecutionError(f"unknown function {expr.name!r}")
        if isinstance(expr, IsNull):
            value = self.eval_expr(expr.operand, env)
            return (value is not None) if expr.negated else (value is None)
        if isinstance(expr, Like):
            result = like_match(
                self.eval_expr(expr.operand, env),
                self.eval_expr(expr.pattern, env),
            )
            if result is None:
                return None
            return not result if expr.negated else result
        if isinstance(expr, Between):
            value = self.eval_expr(expr.operand, env)
            low = self.eval_expr(expr.low, env)
            high = self.eval_expr(expr.high, env)
            if value is None or low is None or high is None:
                return None
            return low <= value <= high
        if isinstance(expr, InList):
            value = self.eval_expr(expr.operand, env)
            if value is None:
                return None
            return any(self.eval_expr(i, env) == value for i in expr.items)
        if isinstance(expr, Case):
            for cond, result in expr.whens:
                if self.eval_expr(cond, env) is True:
                    return self.eval_expr(result, env)
            return (
                self.eval_expr(expr.default, env)
                if expr.default is not None
                else None
            )
        raise ExecutionError(f"cannot evaluate {type(expr).__name__}")

    def _eval_binary(self, expr: BinaryOp, env) -> Any:
        op = expr.op.upper()
        if op == "AND":
            left = self.eval_expr(expr.left, env)
            if left is False:
                return False
            right = self.eval_expr(expr.right, env)
            if right is False:
                return False
            if left is None or right is None:
                return None
            return True
        if op == "OR":
            left = self.eval_expr(expr.left, env)
            if left is True:
                return True
            right = self.eval_expr(expr.right, env)
            if right is True:
                return True
            if left is None or right is None:
                return None
            return False
        left = self.eval_expr(expr.left, env)
        right = self.eval_expr(expr.right, env)
        if left is None or right is None:
            return None
        if op == "+":
            return left + right
        if op == "-":
            return left - right
        if op == "*":
            return left * right
        if op == "/":
            if right == 0:
                raise ExecutionError("division by zero")
            if isinstance(left, int) and isinstance(right, int):
                quotient = abs(left) // abs(right)
                return quotient if (left >= 0) == (right >= 0) else -quotient
            return left / right
        if op == "%":
            return left % right
        if op == "=":
            return left == right
        if op in ("<>", "!="):
            return left != right
        if op == "<":
            return left < right
        if op == "<=":
            return left <= right
        if op == ">":
            return left > right
        if op == ">=":
            return left >= right
        raise ExecutionError(f"unknown operator {expr.op!r}")


# ---------------------------------------------------------------------------
# compiled ("CLR-style") procedure registry
# ---------------------------------------------------------------------------


class ProcedureRegistry:
    """Named procedures on a database: interpreted or compiled."""

    def __init__(self, database):
        self.database = database
        self._interpreted: Dict[str, InterpretedProcedure] = {}
        self._compiled: Dict[str, Callable[..., Any]] = {}
        self._interpreter = Interpreter(database)

    def register_interpreted(self, procedure: InterpretedProcedure) -> None:
        self._interpreted[procedure.name.lower()] = procedure

    def register_compiled(self, name: str, func: Callable[..., Any]) -> None:
        """Register a compiled procedure. It is called as
        ``func(database, *args)`` — the CLR procedure's managed context."""
        self._compiled[name.lower()] = func

    def call(self, name: str, *args: Any) -> Any:
        key = name.lower()
        if key in self._compiled:
            return self._compiled[key](self.database, *args)
        if key in self._interpreted:
            return self._interpreter.call(self._interpreted[key], *args)
        raise ExecutionError(f"unknown procedure {name!r}")
