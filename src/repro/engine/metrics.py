"""Engine-wide observability: counters, spans, and the metrics registry.

SQL Server exposes its execution telemetry through dynamic management
views (``sys.dm_exec_query_stats``, ``sys.dm_db_index_usage_stats``,
``sys.dm_io_virtual_file_stats``); the paper's evaluation leans on that
introspection for its perfmon profiles (Figures 7/8) and actual-row plan
screenshots (Figures 9/10).  This module is our equivalent:

- :class:`Counters` — a dict of monotonically increasing integer
  counters, cheap enough to stay always-on in the storage layer;
- :class:`Span` / :class:`SpanTimeline` — the wall-clock span model
  shared by operator timing, ``SET STATISTICS TIME``, and the
  script-vs-SQL resource traces in :mod:`repro.baselines.trace`;
- :class:`MetricsRegistry` — per-database retention of per-query
  execution stats, surfaced as virtual system tables
  (``sys_dm_exec_query_stats`` et al.) and as a Prometheus-style text
  dump for external scraping;
- :class:`VirtualTable` — a read-only table backed by a Python
  callable, so the system views flow through the ordinary
  planner/binder/scan machinery and observability is itself SQL.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field, replace
from typing import Any, Callable, Dict, Iterator, List, Optional, Sequence, Tuple

from .errors import BindError
from .querystore import normalize_statement
from .schema import Column, TableSchema
from .types import float_type, int_type, varchar_type

# ---------------------------------------------------------------------------
# counters
# ---------------------------------------------------------------------------


class Counters(dict):
    """Monotonic integer counters, keyed by name.

    A missing key reads as zero, so call sites never pre-declare the
    counters they bump and read sites never guard against absence."""

    def __missing__(self, key: str) -> int:
        return 0

    def incr(self, key: str, amount: int = 1) -> None:
        self[key] = self.get(key, 0) + amount

    def merge(self, other: Dict[str, int], prefix: str = "") -> None:
        for key, value in other.items():
            self.incr(prefix + key, value)

    def snapshot(self) -> "Counters":
        return Counters(self)

    @staticmethod
    def delta(after: Dict[str, int], before: Dict[str, int]) -> "Counters":
        """Counters accumulated between two snapshots (zeros dropped)."""
        out = Counters()
        for key, value in after.items():
            diff = value - before.get(key, 0)
            if diff:
                out[key] = diff
        return out


# ---------------------------------------------------------------------------
# spans
# ---------------------------------------------------------------------------


@dataclass
class Span:
    """One named wall-clock interval with free-form attributes."""

    name: str
    start: float
    end: float
    attrs: Dict[str, Any] = field(default_factory=dict)

    @property
    def duration(self) -> float:
        return self.end - self.start


class SpanTimeline:
    """An ordered collection of spans sharing one time origin.

    The first recorded span pins the origin; later spans are normalised
    relative to it so timelines render from t=0 regardless of when the
    process started."""

    def __init__(self, label: str = ""):
        self.label = label
        self.spans: List[Span] = []
        self._origin: Optional[float] = None

    def add_span(
        self, name: str, start: float, end: float, **attrs: Any
    ) -> Span:
        if self._origin is None:
            self._origin = start
        span = Span(name, start - self._origin, end - self._origin, dict(attrs))
        self.spans.append(span)
        return span

    @contextmanager
    def span(self, name: str, **attrs: Any) -> Iterator[Span]:
        start = time.perf_counter()
        try:
            yield Span(name, 0.0, 0.0, dict(attrs))
        finally:
            self.add_span(name, start, time.perf_counter(), **attrs)

    @property
    def total_time(self) -> float:
        if not self.spans:
            return 0.0
        return max(span.end for span in self.spans)


# ---------------------------------------------------------------------------
# per-query stats retention
# ---------------------------------------------------------------------------


@dataclass
class QueryStats:
    """Aggregated execution statistics for one normalised query text."""

    query_text: str
    statement_kind: str
    execution_count: int = 0
    total_elapsed: float = 0.0
    last_elapsed: float = 0.0
    total_rows: int = 0
    total_logical_reads: int = 0
    total_pages_written: int = 0
    total_batch_reads: int = 0
    total_segments_read: int = 0
    total_segments_skipped: int = 0
    #: degree of parallelism of the most recent execution's plan (1 when
    #: the plan had no exchange operator)
    last_dop: int = 1

    def record(
        self, elapsed: float, rows: int, io: Dict[str, int], dop: int = 1
    ) -> None:
        self.execution_count += 1
        self.last_dop = dop
        self.total_elapsed += elapsed
        self.last_elapsed = elapsed
        self.total_rows += rows
        self.total_logical_reads += io.get("pages_read", 0) + io.get(
            "index_node_visits", 0
        )
        self.total_pages_written += io.get("pages_written", 0)
        self.total_batch_reads += io.get("batch_reads", 0)
        self.total_segments_read += io.get("segments_read", 0)
        self.total_segments_skipped += io.get("segments_skipped", 0)

    def snapshot(self) -> "QueryStats":
        """An immutable copy: the registry mutates its own entry in
        place on every re-execution, so anything that retains a stats
        row (the query store, the slow-query log) must hold a snapshot,
        never the live object."""
        return replace(self)


def normalize_query_text(sql: str) -> str:
    """Normalise a statement for stats aggregation.

    Thin re-export of the query store's lexer-based
    :func:`~repro.engine.querystore.normalize_statement` so the metrics
    registry, the query store, and the plan cache all agree on one
    normalization: literals mask to ``?``, keywords upper-case, and
    whitespace collapses — parameterized repetitions of one statement
    shape share a single stats row instead of one row per literal."""
    return normalize_statement(sql)


class MetricsRegistry:
    """Per-database retention of query, index, and IO statistics.

    The registry only stores aggregates keyed by normalised query text —
    the DMV model — so memory stays bounded by the number of distinct
    statements, not the number of executions."""

    def __init__(self, retain: int = 256):
        self.retain = retain
        self._queries: Dict[str, QueryStats] = {}

    def record_statement(
        self,
        sql: str,
        kind: str,
        elapsed: float,
        rows: int,
        io: Dict[str, int],
        dop: int = 1,
        normalized: Optional[str] = None,
    ) -> QueryStats:
        # callers that already hold the normalized text (the database
        # shares the query store's memoized normalization across the
        # metrics registry, the plan cache key, and query-store capture)
        # pass it in so one statement is tokenized once, not three times
        text = normalized if normalized is not None else normalize_query_text(sql)
        stats = self._queries.get(text)
        if stats is None:
            if len(self._queries) >= self.retain:
                # DMV semantics: old entries age out; drop the oldest
                oldest = next(iter(self._queries))
                del self._queries[oldest]
            stats = QueryStats(query_text=text, statement_kind=kind)
            self._queries[text] = stats
        stats.record(elapsed, rows, io, dop=dop)
        # hand back a snapshot: callers that keep the row (query store,
        # slow-query log) must not see it mutate on the next execution
        return stats.snapshot()

    def clear(self) -> None:
        self._queries.clear()

    def queries(self) -> List[QueryStats]:
        return [stats.snapshot() for stats in self._queries.values()]

    # -- system-view row sources ------------------------------------------------

    def query_stats_rows(self) -> List[Tuple[Any, ...]]:
        rows = []
        for q in self._queries.values():
            avg = q.total_elapsed / q.execution_count if q.execution_count else 0.0
            rows.append(
                (
                    q.query_text,
                    q.statement_kind,
                    q.execution_count,
                    round(q.total_elapsed * 1000.0, 3),
                    round(avg * 1000.0, 3),
                    round(q.last_elapsed * 1000.0, 3),
                    q.total_rows,
                    q.total_logical_reads,
                    q.total_pages_written,
                    q.total_batch_reads,
                    q.total_segments_read,
                    q.total_segments_skipped,
                    q.last_dop,
                )
            )
        return rows

    def prometheus_text(
        self,
        io_totals: Dict[str, int],
        workers: Optional[Sequence[Tuple[Any, ...]]] = None,
        waits: Optional[Sequence[Tuple[Any, ...]]] = None,
        plan_cache: Optional[Dict[str, int]] = None,
    ) -> str:
        """Render the registry as Prometheus exposition-format text.

        ``workers`` takes ``sys_dm_os_workers`` rows, ``waits`` takes
        ``sys_dm_os_wait_stats`` rows, and ``plan_cache`` takes the
        plan cache's flat counter map, so pool utilisation, wait
        accounting, and cache effectiveness scrape alongside the
        per-query counters."""
        lines = [
            "# HELP repro_engine_query_executions_total "
            "Executions per normalised query text.",
            "# TYPE repro_engine_query_executions_total counter",
        ]
        for q in self._queries.values():
            label = q.query_text.replace("\\", "\\\\").replace('"', '\\"')
            lines.append(
                f'repro_engine_query_executions_total{{query="{label}"}} '
                f"{q.execution_count}"
            )
        lines += [
            "# HELP repro_engine_query_elapsed_seconds_total "
            "Total wall-clock seconds per normalised query text.",
            "# TYPE repro_engine_query_elapsed_seconds_total counter",
        ]
        for q in self._queries.values():
            label = q.query_text.replace("\\", "\\\\").replace('"', '\\"')
            lines.append(
                f'repro_engine_query_elapsed_seconds_total{{query="{label}"}} '
                f"{q.total_elapsed:.6f}"
            )
        lines += [
            "# HELP repro_engine_query_last_dop "
            "Degree of parallelism of each query's most recent plan.",
            "# TYPE repro_engine_query_last_dop gauge",
        ]
        for q in self._queries.values():
            label = q.query_text.replace("\\", "\\\\").replace('"', '\\"')
            lines.append(
                f'repro_engine_query_last_dop{{query="{label}"}} {q.last_dop}'
            )
        lines += [
            "# HELP repro_engine_query_segments_total "
            "Columnstore segments read/skipped per normalised query text.",
            "# TYPE repro_engine_query_segments_total counter",
        ]
        for q in self._queries.values():
            label = q.query_text.replace("\\", "\\\\").replace('"', '\\"')
            lines.append(
                f'repro_engine_query_segments_total{{query="{label}",'
                f'outcome="read"}} {q.total_segments_read}'
            )
            lines.append(
                f'repro_engine_query_segments_total{{query="{label}",'
                f'outcome="skipped"}} {q.total_segments_skipped}'
            )
        lines += [
            "# HELP repro_engine_io_total Storage-layer IO counters.",
            "# TYPE repro_engine_io_total counter",
        ]
        for key in sorted(io_totals):
            lines.append(
                f'repro_engine_io_total{{counter="{key}"}} {io_totals[key]}'
            )
        if workers is not None:
            lines += [
                "# HELP repro_engine_worker_tasks_completed_total "
                "Tasks completed per pool worker.",
                "# TYPE repro_engine_worker_tasks_completed_total counter",
                "# HELP repro_engine_worker_rows_processed_total "
                "Rows processed per pool worker.",
                "# TYPE repro_engine_worker_rows_processed_total counter",
                "# HELP repro_engine_worker_busy_seconds_total "
                "In-task wall-clock seconds per pool worker.",
                "# TYPE repro_engine_worker_busy_seconds_total counter",
            ]
            for worker_id, _pid, _state, tasks, rows, busy_ms, _last in (
                workers
            ):
                lines.append(
                    "repro_engine_worker_tasks_completed_total"
                    f'{{worker="{worker_id}"}} {tasks}'
                )
                lines.append(
                    "repro_engine_worker_rows_processed_total"
                    f'{{worker="{worker_id}"}} {rows}'
                )
                lines.append(
                    "repro_engine_worker_busy_seconds_total"
                    f'{{worker="{worker_id}"}} {busy_ms / 1000.0:.6f}'
                )
        if waits is not None:
            lines += [
                "# HELP repro_engine_wait_seconds_total "
                "Cumulative engine wait time by wait type.",
                "# TYPE repro_engine_wait_seconds_total counter",
                "# HELP repro_engine_waiting_tasks_total "
                "Cumulative waits observed by wait type.",
                "# TYPE repro_engine_waiting_tasks_total counter",
            ]
            for wait_type, count, wait_ms, _max_ms in waits:
                lines.append(
                    "repro_engine_wait_seconds_total"
                    f'{{wait_type="{wait_type}"}} {wait_ms / 1000.0:.6f}'
                )
                lines.append(
                    "repro_engine_waiting_tasks_total"
                    f'{{wait_type="{wait_type}"}} {count}'
                )
        if plan_cache is not None:
            lines += [
                "# HELP repro_engine_plan_cache_total "
                "Plan cache events (hits, misses, recompiles, "
                "evictions) and gauges (entries, unstable).",
                "# TYPE repro_engine_plan_cache_total counter",
            ]
            for key in sorted(plan_cache):
                lines.append(
                    f'repro_engine_plan_cache_total{{event="{key}"}} '
                    f"{plan_cache[key]}"
                )
        return "\n".join(lines) + "\n"


# ---------------------------------------------------------------------------
# virtual system tables
# ---------------------------------------------------------------------------


class VirtualTable:
    """A read-only table whose rows come from a Python callable.

    Implements just enough of the :class:`~repro.engine.table.Table`
    surface (``schema``, ``row_count``, ``scan``, ``statistics``,
    ``secondary_indexes``) for the planner's access-path selection and
    the executor's TableScan to treat it like any heap."""

    def __init__(self, schema: TableSchema, rows_fn: Callable[[], Sequence[Tuple]]):
        self.schema = schema
        self._rows_fn = rows_fn
        self.statistics = None

    @property
    def row_count(self) -> int:
        return len(self._rows_fn())

    def scan(self) -> Iterator[Tuple[Any, ...]]:
        return iter(self._rows_fn())

    def secondary_indexes(self) -> Dict[str, Any]:
        return {}

    def _read_only(self, *_args: Any, **_kwargs: Any) -> Any:
        raise BindError(f"system view {self.schema.name!r} is read-only")

    insert = _read_only
    delete_where = _read_only
    update_where = _read_only


def _view_schema(name: str, columns: Sequence[Tuple[str, Any]]) -> TableSchema:
    return TableSchema(
        name,
        [Column(col_name, col_type) for col_name, col_type in columns],
    )


def make_system_views(db: "Any") -> Dict[str, VirtualTable]:
    """Build the DMV-style virtual tables bound to one database."""
    query_stats = VirtualTable(
        _view_schema(
            "sys_dm_exec_query_stats",
            [
                ("query_text", varchar_type(-1)),
                ("statement_kind", varchar_type(64)),
                ("execution_count", int_type()),
                ("total_elapsed_ms", float_type()),
                ("avg_elapsed_ms", float_type()),
                ("last_elapsed_ms", float_type()),
                ("total_rows", int_type()),
                ("total_logical_reads", int_type()),
                ("total_pages_written", int_type()),
                ("total_batch_reads", int_type()),
                ("total_segments_read", int_type()),
                ("total_segments_skipped", int_type()),
                ("last_dop", int_type()),
            ],
        ),
        lambda: db.metrics.query_stats_rows(),
    )

    os_workers = VirtualTable(
        _view_schema(
            "sys_dm_os_workers",
            [
                ("worker_id", int_type()),
                ("pid", int_type()),
                ("state", varchar_type(16)),
                ("tasks_completed", int_type()),
                ("rows_processed", int_type()),
                ("busy_ms", float_type()),
                ("last_task_ms", float_type()),
            ],
        ),
        lambda: db.worker_pool_rows(),
    )

    def index_stats_rows() -> List[Tuple[Any, ...]]:
        rows = []
        for table in db.catalog.tables():
            pk = getattr(table, "_pk_index", None)
            if pk is not None:
                rows.append(
                    (
                        table.schema.name,
                        "PK_" + table.schema.name,
                        "CLUSTERED",
                        pk.depth(),
                        len(pk),
                        pk.io.get("seeks", 0),
                        pk.io.get("node_visits", 0),
                    )
                )
            for index_name, (_cols, tree) in getattr(
                table, "_secondary", {}
            ).items():
                rows.append(
                    (
                        table.schema.name,
                        index_name,
                        "NONCLUSTERED",
                        tree.depth(),
                        len(tree),
                        tree.io.get("seeks", 0),
                        tree.io.get("node_visits", 0),
                    )
                )
        return rows

    index_stats = VirtualTable(
        _view_schema(
            "sys_dm_db_index_stats",
            [
                ("table_name", varchar_type(128)),
                ("index_name", varchar_type(128)),
                ("index_type", varchar_type(32)),
                ("depth", int_type()),
                ("entry_count", int_type()),
                ("seeks", int_type()),
                ("node_visits", int_type()),
            ],
        ),
        index_stats_rows,
    )

    io_stats = VirtualTable(
        _view_schema(
            "sys_dm_io_stats",
            [("counter", varchar_type(128)), ("value", int_type())],
        ),
        lambda: sorted(db._io_totals().items()),
    )

    def segment_stats_rows() -> List[Tuple[Any, ...]]:
        rows = []
        for table in db.catalog.tables():
            store = getattr(table, "store", None)
            if store is None:
                continue
            for entry in store.segment_report():
                rows.append(
                    (
                        table.schema.name,
                        entry["column_name"],
                        entry["segment_id"],
                        entry["encoding"],
                        entry["rows"],
                        entry["null_count"],
                        entry["n_distinct"],
                        repr(entry["min_value"]),
                        repr(entry["max_value"]),
                        entry["encoded_bytes"],
                    )
                )
        return rows

    segment_stats = VirtualTable(
        _view_schema(
            "sys_dm_db_segment_stats",
            [
                ("table_name", varchar_type(128)),
                ("column_name", varchar_type(128)),
                ("segment_id", int_type()),
                ("encoding", varchar_type(16)),
                ("row_count", int_type()),
                ("null_count", int_type()),
                ("n_distinct", int_type()),
                ("min_value", varchar_type(-1)),
                ("max_value", varchar_type(-1)),
                ("encoded_bytes", int_type()),
            ],
        ),
        segment_stats_rows,
    )

    def verify_rows() -> List[Tuple[Any, ...]]:
        rows = list(db.catalog.functions.verification_rows())
        rows.extend(db.lint_rows())
        return rows

    verify_results = VirtualTable(
        _view_schema(
            "sys_dm_verify_results",
            [
                ("object_type", varchar_type(32)),
                ("object_name", varchar_type(128)),
                ("rule", varchar_type(64)),
                ("severity", varchar_type(16)),
                ("message", varchar_type(-1)),
                # the originating statement (normalised SQL prefix) for
                # plan-level findings, or the registered object path for
                # UDx-level findings — so the two are distinguishable
                ("source", varchar_type(-1)),
            ],
        ),
        verify_rows,
    )

    query_store_query = VirtualTable(
        _view_schema(
            "sys_dm_query_store_query",
            [
                ("query_id", int_type()),
                ("query_text", varchar_type(-1)),
                ("statement_kind", varchar_type(64)),
                ("first_seen", varchar_type(32)),
                ("last_seen", varchar_type(32)),
                ("execution_count", int_type()),
                ("plan_count", int_type()),
            ],
        ),
        lambda: db.query_store.query_rows(),
    )

    query_store_plan = VirtualTable(
        _view_schema(
            "sys_dm_query_store_plan",
            [
                ("plan_id", int_type()),
                ("query_id", int_type()),
                ("plan_text", varchar_type(-1)),
                ("est_rows", int_type()),
                ("first_seen", varchar_type(32)),
                ("last_dop", int_type()),
                ("execution_count", int_type()),
            ],
        ),
        lambda: db.query_store.plan_rows(),
    )

    query_store_runtime = VirtualTable(
        _view_schema(
            "sys_dm_query_store_runtime_stats",
            [
                ("query_id", int_type()),
                ("plan_id", int_type()),
                ("interval_id", int_type()),
                ("interval_start", varchar_type(32)),
                ("executions", int_type()),
                ("total_elapsed_ms", float_type()),
                ("avg_elapsed_ms", float_type()),
                ("last_elapsed_ms", float_type()),
                ("total_rows", int_type()),
                ("last_est_rows", int_type()),
                ("last_actual_rows", int_type()),
                ("total_logical_reads", int_type()),
                ("total_batch_reads", int_type()),
                ("total_segments_read", int_type()),
                ("total_segments_skipped", int_type()),
                ("last_dop", int_type()),
            ],
        ),
        lambda: db.query_store.runtime_rows(),
    )

    wait_stats = VirtualTable(
        _view_schema(
            "sys_dm_os_wait_stats",
            [
                ("wait_type", varchar_type(32)),
                ("waiting_tasks_count", int_type()),
                ("wait_time_ms", float_type()),
                ("max_wait_time_ms", float_type()),
            ],
        ),
        lambda: db.tracer.wait_stats.rows(),
    )

    trace_spans = VirtualTable(
        _view_schema(
            "sys_dm_exec_trace_spans",
            [
                ("trace_id", int_type()),
                ("span_id", int_type()),
                ("parent_span_id", int_type()),
                ("name", varchar_type(-1)),
                ("category", varchar_type(32)),
                ("wait_type", varchar_type(32)),
                ("start_ms", float_type()),
                ("duration_ms", float_type()),
                ("pid", int_type()),
                ("worker", int_type()),
            ],
        ),
        lambda: db.tracer.span_rows(),
    )

    cached_plans = VirtualTable(
        _view_schema(
            "sys_dm_exec_cached_plans",
            [
                ("query_text", varchar_type(-1)),
                ("state", varchar_type(64)),
                ("hit_count", int_type()),
                ("recompile_count", int_type()),
                ("parameter_count", int_type()),
                ("guard_count", int_type()),
                ("created_at", int_type()),
                ("last_used_at", int_type()),
            ],
        ),
        lambda: db.plan_cache.entry_rows(),
    )

    plan_cache_stats = VirtualTable(
        _view_schema(
            "sys_dm_exec_plan_cache_stats",
            [("counter", varchar_type(128)), ("value", int_type())],
        ),
        lambda: db.plan_cache.stats_rows(),
    )

    slow_queries = VirtualTable(
        _view_schema(
            "sys_dm_exec_slow_queries",
            [
                ("query_text", varchar_type(-1)),
                ("statement_kind", varchar_type(64)),
                ("elapsed_ms", float_type()),
                ("threshold_ms", float_type()),
                ("row_count", int_type()),
                ("dop", int_type()),
                ("started_at", varchar_type(32)),
            ],
        ),
        lambda: db.slow_query_rows(),
    )

    return {
        "sys_dm_exec_query_stats": query_stats,
        "sys_dm_db_index_stats": index_stats,
        "sys_dm_io_stats": io_stats,
        "sys_dm_db_segment_stats": segment_stats,
        "sys_dm_verify_results": verify_results,
        "sys_dm_os_workers": os_workers,
        "sys_dm_query_store_query": query_store_query,
        "sys_dm_query_store_plan": query_store_plan,
        "sys_dm_query_store_runtime_stats": query_store_runtime,
        "sys_dm_os_wait_stats": wait_stats,
        "sys_dm_exec_trace_spans": trace_spans,
        "sys_dm_exec_slow_queries": slow_queries,
        "sys_dm_exec_cached_plans": cached_plans,
        "sys_dm_exec_plan_cache_stats": plan_cache_stats,
    }
