"""Plan cache + adaptive recompilation for hot parameterized traffic.

The paper's workloads are dominated by *parameterized repetition*: the
same handful of statement shapes — window scans over probe intervals,
per-gene lookups, MegaBLAST staging queries — executed thousands of
times with different literals.  SQL Server amortises that traffic
through its procedure cache: plans are keyed by normalized text,
parameter values are sniffed at compile time, and a feedback loop
(``colmodctr`` counters, auto ``UPDATE STATISTICS``, recompile
thresholds) keeps cached plans honest as data drifts.

This module is our reproduction of that loop:

- :func:`parameterize_select` rewrites a parsed ``SELECT`` into a
  *plan template*: every inline literal becomes a :class:`Parameter`
  slot reading a shared value store, so one compiled physical plan
  serves every literal combination of the same normalized text.
- :class:`PlanCache` keys templates by normalized SQL plus a cache
  *epoch* (schema version, statistics version, plan-affecting session
  knobs).  A hit skips parse→optimize→lower entirely: the cached
  operator tree is re-executed with fresh values poked into the store.
- *Parameter-sniffing guards* remember the selectivity each cached
  plan was costed under.  When a new parameter vector's estimated
  selectivity diverges past a threshold, the statement recompiles;
  when plan choice flip-flops across recompiles, the entry is marked
  plan-unstable and recompiles on every execution (SQL Server's
  ``OPTION (RECOMPILE)`` escape hatch, applied automatically).
- Invalidation is lazy and reasoned: DDL, ``UPDATE STATISTICS``,
  and knob changes bump epoch components; mismatched entries are
  evicted on next touch with the component named in the eviction
  reason, surfaced through ``sys_dm_exec_cached_plans``.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Set, Tuple

from .errors import BindError
from .expressions import (
    Expr,
    Literal,
    Parameter,
    contains_parameter,
    expression_to_sql,
    rewrite,
    column_refs,
    walk,
)
from .optimizer.logical import split_conjuncts
from .querystore import (
    literal_values,
    mask_literals,
    plan_signature,
    statement_shape,
)
from .sql import ast

# ---------------------------------------------------------------------------
# statement parameterization
# ---------------------------------------------------------------------------


@dataclass
class ParameterizedStatement:
    """A SELECT rewritten into a reusable plan template.

    ``template`` is structurally identical to the source statement
    except that inline literals are :class:`Parameter` nodes reading
    ``store[i]``; ``store`` holds the literal values of *this* parse.
    ``extras`` collects every masked-but-unparameterizable value —
    FROM-level TVF arguments (evaluated at plan time), OPENROWSET
    paths, TOP and MAXDOP — which must join the cache key instead."""

    template: ast.SelectStmt
    store: List[Any]
    extras: Tuple[Any, ...]


def parameterize_select(stmt: ast.SelectStmt) -> ParameterizedStatement:
    """Extract parameter slots from ``stmt``.

    Traversal order is the deterministic bottom-up order of
    :func:`repro.engine.expressions.rewrite` over the statement's
    clauses in a fixed sequence, so two parses of the same normalized
    text always yield slots in the same positions — the property the
    hit path relies on to rebind values without bookkeeping."""
    store: List[Any] = []
    extras: List[Any] = []

    def lift(node: Expr) -> Optional[Expr]:
        # NULL stays inline: the NULL keyword is not masked by
        # normalization, so it is part of the statement's identity
        if type(node) is Literal and node.value is not None:
            param = Parameter(len(store), store)
            store.append(node.value)
            return param
        return None

    def rw(expr: Optional[Expr]) -> Optional[Expr]:
        return rewrite(expr, lift) if expr is not None else None

    def key_literals(expr: Expr) -> None:
        for node in walk(expr):
            if type(node) is Literal:
                extras.append(node.value)

    def rewrite_source(source: Any, in_apply: bool = False) -> Any:
        if isinstance(source, ast.SubqueryRef):
            return ast.SubqueryRef(
                rewrite_select(source.select), alias=source.alias
            )
        if isinstance(source, ast.TvfRef):
            if in_apply:
                # CROSS APPLY arguments are compiled per outer row —
                # genuine runtime expressions, safe to parameterize
                return ast.TvfRef(
                    source.name,
                    tuple(rw(arg) for arg in source.args),
                    alias=source.alias,
                )
            # FROM-level TVF arguments are evaluated at *plan* time
            # (the rowset is materialized during lowering), so their
            # literals select the plan and must key the cache instead
            for arg in source.args:
                key_literals(arg)
            return source
        if isinstance(source, ast.OpenRowsetRef):
            extras.append(("openrowset", source.path))
            return source
        return source

    def rewrite_select(select: ast.SelectStmt) -> ast.SelectStmt:
        items = [
            item
            if item.star or item.expr is None
            else ast.SelectItem(
                expr=rw(item.expr),
                alias=item.alias,
                star=item.star,
                star_qualifier=item.star_qualifier,
            )
            for item in select.items
        ]
        joins = [
            ast.JoinClause(
                join.kind,
                rewrite_source(join.source, in_apply=join.kind != "JOIN"),
                rw(join.on),
            )
            for join in select.joins
        ]
        out = ast.SelectStmt(
            items=items,
            source=rewrite_source(select.source),
            joins=joins,
            where=rw(select.where),
            group_by=[rw(expr) for expr in select.group_by],
            having=rw(select.having),
            order_by=[(rw(expr), desc) for expr, desc in select.order_by],
            top=select.top,
            distinct=select.distinct,
            maxdop=select.maxdop,
        )
        # TOP / MAXDOP are masked by normalization but shape the plan
        # (limit operator, exchange placement) — key on them
        extras.append(("top", select.top))
        extras.append(("maxdop", select.maxdop))
        return out

    template = rewrite_select(stmt)
    # the planner reads source_sql for lint suppressions / diagnostics
    template.source_sql = getattr(stmt, "source_sql", "") or ""
    return ParameterizedStatement(template, store, tuple(extras))


# ---------------------------------------------------------------------------
# cache entries
# ---------------------------------------------------------------------------


@dataclass
class GuardProbe:
    """One parameter-sensitive conjunct the cached plan was costed on.

    ``conjunct`` is the template's expression node — its Parameters
    read the live store, so re-costing it after a rebind estimates
    selectivity *for the new values* against current statistics."""

    table_name: str
    conjunct: Expr
    label: str
    compiled_selectivity: float


@dataclass
class CacheEntry:
    key: Tuple[str, Tuple[Any, ...]]
    normalized: str
    template: ast.SelectStmt
    store: List[Any]
    extras: Tuple[Any, ...]
    plan: Any
    epoch: Tuple[Any, ...]
    base_notes: List[str]
    guards: List[GuardProbe]
    signature: Tuple[Tuple[int, str], ...]
    param_count: int
    hits: int = 0
    recompiles: int = 0
    created_at: int = 0
    last_used_at: int = 0
    #: raw-text shapes registered for the parse-free hit path
    fast_shapes: Set[str] = field(default_factory=set)


@dataclass
class _KeyHistory:
    """Per-statement compile history backing flip-flop detection."""

    recompiles: int = 0
    signatures: Set[Tuple[Tuple[int, str], ...]] = field(default_factory=set)


class CacheOutcome:
    """What :meth:`PlanCache.fetch` decided for one execution."""

    __slots__ = ("plan", "note")

    def __init__(self, plan: Any, note: Optional[str]):
        self.plan = plan
        self.note = note


# ---------------------------------------------------------------------------
# the cache
# ---------------------------------------------------------------------------


class PlanCache:
    """Normalized-SQL → compiled-plan cache with adaptive recompilation.

    Epoch components (checked lazily on every touch):

    0. catalog schema version — any DDL invalidates (reason
       ``schema``);
    1. database statistics epoch — ``UPDATE STATISTICS`` (manual or
       automatic) invalidates (reason ``statistics``);
    2–4. plan-affecting session knobs: ``execution_mode``,
       ``MAX_DOP``, ``PLAN_VERIFY`` (reason ``knobs``).

    Sniffing guards fire when a rebind's estimated selectivity
    diverges from the compiled estimate by more than
    ``guard_abs_threshold`` absolutely *and* ``guard_ratio_threshold``
    relatively; after ``unstable_after`` recompiles spanning at least
    two distinct plan shapes the statement is marked plan-unstable and
    recompiled per execution."""

    #: epoch component index → eviction reason
    _EPOCH_REASONS = ("schema", "statistics", "knobs", "knobs", "knobs")

    def __init__(
        self,
        database: Any,
        capacity: int = 128,
        guard_abs_threshold: float = 0.05,
        guard_ratio_threshold: float = 10.0,
        unstable_after: int = 3,
    ):
        self.database = database
        self.enabled = True
        self.capacity = capacity
        self.guard_abs_threshold = guard_abs_threshold
        self.guard_ratio_threshold = guard_ratio_threshold
        self.unstable_after = unstable_after
        self._entries: "OrderedDict[Tuple[str, Tuple], CacheEntry]" = (
            OrderedDict()
        )
        self._history: Dict[Tuple[str, Tuple], _KeyHistory] = {}
        #: statements recompiled per execution: key → (reason, epoch)
        self._unstable: Dict[Tuple[str, Tuple], Tuple[str, Tuple]] = {}
        #: raw-text shape → entry, for the parse-free hit path
        self._fast_index: Dict[str, CacheEntry] = {}
        self._clock = 0
        self.hits = 0
        self.misses = 0
        self.recompiles = 0
        self.evictions = 0
        self.eviction_reasons: Dict[str, int] = {}
        self.recompile_reasons: Dict[str, int] = {}

    # -- epoch ------------------------------------------------------------------

    def current_epoch(self) -> Tuple[Any, ...]:
        db = self.database
        return (
            db.catalog.schema_version,
            db.stats_epoch,
            db.execution_mode,
            db.max_dop,
            db.plan_verify,
        )

    def _epoch_reason(
        self, old: Tuple[Any, ...], new: Tuple[Any, ...]
    ) -> str:
        for index, (before, after) in enumerate(zip(old, new)):
            if before != after:
                return self._EPOCH_REASONS[index]
        return "knobs"

    # -- main entry points ------------------------------------------------------

    def _key_text(self, stmt: ast.SelectStmt) -> str:
        """Normalized key text for a statement.

        The parser copies the full ``EXPLAIN ...`` source onto the
        inner select it wraps (lint pragmas travel with it), so the
        prefix is stripped post-normalization — EXPLAIN must peek at
        the same key the bare statement executes under."""
        normalized = self.database.query_store.normalize(
            getattr(stmt, "source_sql", "") or ""
        )
        for prefix in ("EXPLAIN ANALYZE ", "EXPLAIN "):
            if normalized.startswith(prefix):
                return normalized[len(prefix):]
        return normalized

    def fetch_text(self, sql: str) -> Optional[CacheOutcome]:
        """Raw-text hit path: resolve a plan without parsing at all.

        One regex pass masks ``sql`` into its statement shape; shapes
        registered by :meth:`_register_fast` map straight to a cache
        entry whose slot order provably matches the text order of the
        literals, so rebinding is a positional extract-and-poke. Every
        doubt — unregistered shape, stale epoch, literal-count
        mismatch, tripped sniffing guard — returns None and defers to
        the parse path, which owns all miss/eviction/recompile
        bookkeeping. Only clean hits are counted here."""
        if not self.enabled or not self._fast_index:
            return None
        entry = self._fast_index.get(statement_shape(sql))
        if entry is None:
            return None
        if self._entries.get(entry.key) is not entry:
            return None
        if entry.epoch != self.current_epoch():
            return None
        values = literal_values(sql)
        if values is None or len(values) != entry.param_count:
            return None
        saved = list(entry.store)
        entry.store[:] = values
        if entry.guards and self._tripped_guard(entry) is not None:
            entry.store[:] = saved
            return None
        self._clock += 1
        self.hits += 1
        entry.hits += 1
        entry.last_used_at = self._clock
        self._entries.move_to_end(entry.key)
        note = "plan cache hit"
        entry.plan.plan_notes = entry.base_notes + [note]
        return CacheOutcome(entry.plan, note)

    def fetch(self, stmt: ast.SelectStmt) -> CacheOutcome:
        """Resolve a plan for one *execution* of ``stmt``.

        Returns the plan plus the note to surface ("plan cache
        hit|miss|recompile(<reason>)"); with the cache disabled the
        planner is invoked directly and the note is ``None``."""
        planner = self.database._planner
        if not self.enabled:
            return CacheOutcome(planner.plan_select(stmt), None)

        self._clock += 1
        parsed = parameterize_select(stmt)
        normalized = self._key_text(stmt)
        key = (normalized, parsed.extras)
        epoch = self.current_epoch()

        unstable = self._unstable.get(key)
        if unstable is not None:
            reason, marked_epoch = unstable
            if marked_epoch == epoch:
                # per-execution recompile: plan the original statement
                # with inline literals so value-specific optimizations
                # (folding, pushdown pruning) fully apply
                self._count_recompile("unstable")
                plan = planner.plan_select(stmt)
                note = "plan cache recompile(unstable plan)"
                plan.plan_notes = list(plan.plan_notes or []) + [note]
                return CacheOutcome(plan, note)
            # the world changed since the statement was condemned —
            # give the shape a fresh chance
            del self._unstable[key]
            self._history.pop(key, None)

        invalidated: Optional[str] = None
        entry = self._entries.get(key)
        if entry is not None and entry.epoch != epoch:
            invalidated = self._epoch_reason(entry.epoch, epoch)
            self._evict(key, invalidated)
            entry = None

        if entry is not None:
            if not self._rebind(entry, parsed):
                # same normalized text resolved to a different slot
                # shape (only reachable via normalization fallbacks) —
                # drop the entry and recompile
                self._evict(key, "shape")
            else:
                tripped = self._tripped_guard(entry)
                if tripped is None:
                    self.hits += 1
                    entry.hits += 1
                    entry.last_used_at = self._clock
                    self._entries.move_to_end(key)
                    self._register_fast(entry, stmt)
                    note = "plan cache hit"
                    entry.plan.plan_notes = entry.base_notes + [note]
                    return CacheOutcome(entry.plan, note)
                reason = f"sniffing guard: {tripped}"
                self._count_recompile("sniffing")
                replacement = self._compile(key, normalized, parsed, epoch)
                replacement.recompiles = entry.recompiles + 1
                replacement.hits = entry.hits
                replacement.created_at = entry.created_at
                self._unindex_fast(entry)
                self._entries[key] = replacement
                self._entries.move_to_end(key)
                if self._note_flipflop(key, replacement.signature, epoch):
                    note = f"plan cache recompile({reason}; plan unstable)"
                else:
                    note = f"plan cache recompile({reason})"
                replacement.plan.plan_notes = replacement.base_notes + [note]
                return CacheOutcome(replacement.plan, note)

        # miss (cold, invalidated, or shape-evicted)
        self.misses += 1
        entry = self._compile(key, normalized, parsed, epoch)
        self._insert(key, entry)
        self._register_fast(entry, stmt)
        if invalidated is not None:
            note = f"plan cache miss (invalidated: {invalidated})"
        else:
            note = "plan cache miss"
        entry.plan.plan_notes = entry.base_notes + [note]
        return CacheOutcome(entry.plan, note)

    def peek(self, stmt: ast.SelectStmt) -> Optional[str]:
        """What would :meth:`fetch` do for ``stmt``? — for EXPLAIN.

        Bumps no counters, caches nothing, and leaves entry stores
        untouched, so plan inspection never perturbs cache state."""
        if not self.enabled:
            return None
        parsed = parameterize_select(stmt)
        key = (self._key_text(stmt), parsed.extras)
        epoch = self.current_epoch()
        unstable = self._unstable.get(key)
        if unstable is not None and unstable[1] == epoch:
            return "plan cache recompile(unstable plan)"
        entry = self._entries.get(key)
        if entry is None:
            return "plan cache miss"
        if entry.epoch != epoch:
            reason = self._epoch_reason(entry.epoch, epoch)
            return f"plan cache miss (invalidated: {reason})"
        if len(parsed.store) != entry.param_count:
            return "plan cache miss"
        saved = list(entry.store)
        try:
            entry.store[:] = parsed.store
            tripped = self._tripped_guard(entry)
        finally:
            entry.store[:] = saved
        if tripped is not None:
            return f"plan cache recompile(sniffing guard: {tripped})"
        return "plan cache hit"

    def clear(self, reason: str = "explicit") -> int:
        """Drop every entry (and unstable markers); returns the count."""
        dropped = len(self._entries)
        for key in list(self._entries):
            self._evict(key, reason)
        self._unstable.clear()
        self._history.clear()
        self._fast_index.clear()
        return dropped

    # -- compilation ------------------------------------------------------------

    def _compile(
        self,
        key: Tuple[str, Tuple],
        normalized: str,
        parsed: ParameterizedStatement,
        epoch: Tuple[Any, ...],
    ) -> CacheEntry:
        planner = self.database._planner
        plan = planner.plan_select(parsed.template)
        base_notes = list(plan.plan_notes or [])
        signature = plan_signature(plan)
        history = self._history.setdefault(key, _KeyHistory())
        history.signatures.add(signature)
        return CacheEntry(
            key=key,
            normalized=normalized,
            template=parsed.template,
            store=parsed.store,
            extras=parsed.extras,
            plan=plan,
            epoch=epoch,
            base_notes=base_notes,
            guards=self._collect_guards(parsed.template),
            signature=signature,
            param_count=len(parsed.store),
            created_at=self._clock,
            last_used_at=self._clock,
        )

    def _rebind(
        self, entry: CacheEntry, parsed: ParameterizedStatement
    ) -> bool:
        """Poke this execution's literal values into the cached store."""
        if len(parsed.store) != entry.param_count:
            return False
        entry.store[:] = parsed.store
        return True

    # -- sniffing guards --------------------------------------------------------

    def _collect_guards(self, template: ast.SelectStmt) -> List[GuardProbe]:
        """Find the parameter-sensitive WHERE conjuncts worth watching.

        A conjunct qualifies when it contains at least one Parameter
        and every column it references resolves to a single base table
        in the catalog — those are the predicates whose estimated
        selectivity can swing with the parameter vector."""
        if template.where is None:
            return []
        bindings = self._from_bindings(template)
        if not bindings:
            return []
        cost = self.database._planner.cost
        guards: List[GuardProbe] = []
        for conjunct in split_conjuncts(template.where):
            if not contains_parameter(conjunct):
                continue
            table = self._owning_table(conjunct, bindings)
            if table is None:
                continue
            selectivity = cost.conjunct_selectivity(conjunct, table)
            guards.append(
                GuardProbe(
                    table_name=table.schema.name,
                    conjunct=conjunct,
                    label=mask_literals(expression_to_sql(conjunct)),
                    compiled_selectivity=selectivity,
                )
            )
        return guards

    def _from_bindings(self, template: ast.SelectStmt) -> Dict[str, Any]:
        """binding name (lowered) → catalog table for plain FROM refs."""
        bindings: Dict[str, Any] = {}

        def add(source: Any) -> None:
            if not isinstance(source, ast.TableRef):
                return
            try:
                table = self.database.catalog.table(source.name)
            except BindError:
                return
            bindings[source.binding_name.lower()] = table

        add(template.source)
        for join in template.joins:
            add(join.source)
        return bindings

    def _owning_table(
        self, conjunct: Expr, bindings: Dict[str, Any]
    ) -> Optional[Any]:
        owners: Set[str] = set()
        for ref in column_refs(conjunct):
            if ref.qualifier:
                name = ref.qualifier.lower()
                if name not in bindings:
                    return None
                owners.add(name)
            else:
                candidates = [
                    binding
                    for binding, table in bindings.items()
                    if self._has_column(table, ref.name)
                ]
                if len(candidates) != 1:
                    return None
                owners.add(candidates[0])
        if len(owners) != 1:
            return None
        return bindings[owners.pop()]

    @staticmethod
    def _has_column(table: Any, name: str) -> bool:
        lowered = name.lower()
        return any(
            column.name.lower() == lowered for column in table.schema.columns
        )

    def _tripped_guard(self, entry: CacheEntry) -> Optional[str]:
        """Re-cost each guard for the current store values; return the
        label of the first guard whose estimate diverged, else None."""
        cost = self.database._planner.cost
        for probe in entry.guards:
            try:
                table = self.database.catalog.table(probe.table_name)
            except BindError:
                continue  # epoch check already handles DDL
            estimate = cost.conjunct_selectivity(probe.conjunct, table)
            low, high = sorted((probe.compiled_selectivity, estimate))
            if high - low < self.guard_abs_threshold:
                continue
            if high / max(low, 1e-9) < self.guard_ratio_threshold:
                continue
            return probe.label
        return None

    def _note_flipflop(
        self,
        key: Tuple[str, Tuple],
        signature: Tuple[Tuple[int, str], ...],
        epoch: Tuple[Any, ...],
    ) -> bool:
        """Track a recompile; condemn the statement if plan choice has
        flip-flopped. Returns True when the key just went unstable."""
        history = self._history.setdefault(key, _KeyHistory())
        history.recompiles += 1
        history.signatures.add(signature)
        if (
            history.recompiles >= self.unstable_after
            and len(history.signatures) >= 2
        ):
            self._evict(key, "unstable")
            self._unstable[key] = ("plan flip-flop", epoch)
            return True
        return False

    # -- parse-free hit path ----------------------------------------------------

    def _register_fast(self, entry: CacheEntry, stmt: ast.SelectStmt) -> None:
        """Index ``entry``'s raw-text shape for :meth:`fetch_text`.

        Registration demands *proof* that positional literal
        extraction rebinds correctly: the regex-extracted values of the
        statement's source text must equal the parse-derived store
        pointwise (same value, same type — this rules out literals the
        regex can't see, like TOP/TVF/MAXDOP extras, folded signs, or
        exponent forms) and be pairwise distinct. Distinctness is what
        makes pointwise equality a proof: if token order permuted slot
        order anywhere, two distinct values would disagree. The
        token→slot mapping is structural, so one proven rendition
        certifies every rendition of the shape. Anything unprovable
        just stays on the parse path."""
        if len(entry.fast_shapes) >= 4:
            return
        raw = getattr(stmt, "source_sql", "") or ""
        if not raw or raw.lstrip()[:7].upper() == "EXPLAIN":
            return
        values = literal_values(raw)
        if values is None or len(values) != entry.param_count:
            return
        for value, slot in zip(values, entry.store):
            if type(value) is not type(slot) or value != slot:
                return
        if len(set(map(repr, values))) != len(values):
            return
        shape = statement_shape(raw)
        existing = self._fast_index.get(shape)
        if existing is not None and existing is not entry:
            return
        entry.fast_shapes.add(shape)
        self._fast_index[shape] = entry

    def _unindex_fast(self, entry: CacheEntry) -> None:
        for shape in entry.fast_shapes:
            if self._fast_index.get(shape) is entry:
                del self._fast_index[shape]
        entry.fast_shapes.clear()

    # -- bookkeeping ------------------------------------------------------------

    def _insert(self, key: Tuple[str, Tuple], entry: CacheEntry) -> None:
        while len(self._entries) >= self.capacity:
            oldest = next(iter(self._entries))
            self._evict(oldest, "capacity")
        self._entries[key] = entry

    def _evict(self, key: Tuple[str, Tuple], reason: str) -> None:
        entry = self._entries.pop(key, None)
        if entry is not None:
            self._unindex_fast(entry)
            self.evictions += 1
            self.eviction_reasons[reason] = (
                self.eviction_reasons.get(reason, 0) + 1
            )

    def _count_recompile(self, reason: str) -> None:
        self.recompiles += 1
        self.recompile_reasons[reason] = (
            self.recompile_reasons.get(reason, 0) + 1
        )

    # -- introspection ----------------------------------------------------------

    def __len__(self) -> int:
        return len(self._entries)

    def stats_dict(self) -> Dict[str, int]:
        """Flat counter map for Prometheus / the stats DMV."""
        out: Dict[str, int] = {
            "entries": len(self._entries),
            "unstable": len(self._unstable),
            "hits": self.hits,
            "misses": self.misses,
            "recompiles": self.recompiles,
            "evictions": self.evictions,
        }
        for reason, count in sorted(self.eviction_reasons.items()):
            out[f"evictions_{reason}"] = count
        for reason, count in sorted(self.recompile_reasons.items()):
            out[f"recompiles_{reason}"] = count
        return out

    def entry_rows(self) -> List[Tuple[Any, ...]]:
        """Rows for ``sys_dm_exec_cached_plans``: cached entries first
        (LRU order, coldest first), then plan-unstable statements."""
        rows: List[Tuple[Any, ...]] = []
        for entry in self._entries.values():
            rows.append(
                (
                    entry.normalized,
                    "cached",
                    entry.hits,
                    entry.recompiles,
                    entry.param_count,
                    len(entry.guards),
                    entry.created_at,
                    entry.last_used_at,
                )
            )
        for (normalized, _extras), (reason, _epoch) in self._unstable.items():
            history = self._history.get((normalized, _extras))
            rows.append(
                (
                    normalized,
                    f"unstable ({reason})",
                    0,
                    history.recompiles if history else 0,
                    0,
                    0,
                    0,
                    0,
                )
            )
        return rows

    def stats_rows(self) -> List[Tuple[str, int]]:
        """Rows for ``sys_dm_exec_plan_cache_stats``."""
        return sorted(self.stats_dict().items())
