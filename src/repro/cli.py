"""Command-line interface.

Eight subcommands cover the lab loop a downstream user runs:

- ``simulate`` — generate a synthetic reference genome, gene annotation,
  and a level-1 FASTQ lane (DGE or re-sequencing statistics);
- ``pipeline`` — run phases 1–3 against a FASTQ + reference: import,
  bin/align, and the tertiary analysis for the experiment kind, writing
  the result files;
- ``storage-report`` — measure a lane under every physical design and
  print the Table-1/2-style comparison;
- ``search`` — q-gram search for a pattern over a lane's reads;
- ``metrics`` — run SQL with ``SET STATISTICS TIME/IO ON`` and dump the
  engine's DMV-style system views (or Prometheus exposition text);
- ``trace`` — run SQL with statement tracing on, print each statement's
  span tree (planner, operators, cross-process worker phases), and
  export Chrome trace-event JSON;
- ``lint`` — statically verify UDx modules (permission sets, contracts)
  and lint ``.sql`` scripts through the plan-time analyzer, exiting
  non-zero when any error-severity finding is reported;
- ``sanitize`` — run the plan sanitizer and fork-safety analyzer:
  ``--self`` proves the engine's own surface (fork-safety over the
  parallel engine's source + the golden plan corpus must produce zero
  diagnostics), paths mode checks user ``.sql`` scripts (planned with
  ``PLAN_VERIFY`` armed) and ``.py`` modules (fork-safety AST pass);
  ``--report`` writes the machine-readable findings JSON CI uploads.

Example::

    repro-genomics simulate --kind dge --out-dir ./demo --reads 20000
    repro-genomics pipeline --kind dge --out-dir ./demo \\
        --fastq ./demo/lane.fastq --reference ./demo/reference.fasta \\
        --genes ./demo/genes.tsv
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path
from typing import List, Optional, Sequence

from .core import GenomicsWarehouse, SequencingWorkflow
from .core.storage_report import ScenarioData, format_table, measure_storage
from .genomics.aligner import ShortReadAligner
from .genomics.fasta import read_fasta, write_fasta
from .genomics.fastq import read_fastq, write_fastq
from .genomics.simulate import (
    GeneAnnotation,
    annotate_genes,
    generate_reference,
    simulate_dge_lane,
    simulate_resequencing_lane,
)


def _write_genes(genes: Sequence[GeneAnnotation], path: Path) -> None:
    with open(path, "w", encoding="ascii") as handle:
        handle.write("gene_id\tname\tchromosome\tstart\tend\tstrand\n")
        for gene in genes:
            handle.write(
                f"{gene.gene_id}\t{gene.name}\t{gene.chromosome}\t"
                f"{gene.start}\t{gene.end}\t{gene.strand}\n"
            )


def _read_genes(path: Path) -> List[GeneAnnotation]:
    genes = []
    with open(path, "r", encoding="ascii") as handle:
        header = handle.readline()
        if not header.startswith("gene_id"):
            raise SystemExit(f"{path}: not a genes.tsv file")
        for line in handle:
            gene_id, name, chromosome, start, end, strand = (
                line.rstrip("\n").split("\t")
            )
            genes.append(
                GeneAnnotation(
                    int(gene_id), name, chromosome, int(start), int(end), strand
                )
            )
    return genes


# ---------------------------------------------------------------------------
# simulate
# ---------------------------------------------------------------------------


def cmd_simulate(args: argparse.Namespace) -> int:
    out_dir = Path(args.out_dir)
    out_dir.mkdir(parents=True, exist_ok=True)
    reference = generate_reference(
        n_chromosomes=args.chromosomes,
        chromosome_length=args.chromosome_length,
        seed=args.seed,
    )
    write_fasta(reference, out_dir / "reference.fasta")
    genes = annotate_genes(
        reference,
        n_genes=args.genes,
        gene_length=(300, max(1500, args.chromosome_length // 40)),
        seed=args.seed + 1,
    )
    _write_genes(genes, out_dir / "genes.tsv")
    if args.kind == "dge":
        reads = simulate_dge_lane(
            reference, genes, args.reads, seed=args.seed + 2
        )
    else:
        reads = simulate_resequencing_lane(
            reference, args.reads, seed=args.seed + 2
        )
    count = write_fastq(reads, out_dir / "lane.fastq")
    print(
        f"wrote {out_dir}/reference.fasta ({args.chromosomes} chromosomes), "
        f"genes.tsv ({len(genes)} genes), lane.fastq ({count} reads, "
        f"{args.kind})"
    )
    return 0


# ---------------------------------------------------------------------------
# pipeline
# ---------------------------------------------------------------------------


def cmd_pipeline(args: argparse.Namespace) -> int:
    out_dir = Path(args.out_dir)
    out_dir.mkdir(parents=True, exist_ok=True)
    reference = list(read_fasta(args.reference))
    reads = list(read_fastq(args.fastq))
    started = time.perf_counter()
    with GenomicsWarehouse(
        data_dir=out_dir / "warehouse", default_dop=args.dop
    ) as warehouse:
        warehouse.load_reference(reference)
        if args.genes:
            warehouse.load_genes(_read_genes(Path(args.genes)))
        elif args.kind == "dge":
            raise SystemExit("--genes is required for kind=dge")
        warehouse.register_experiment(1, args.name, args.kind)
        warehouse.register_sample_group(1, 1, "cli")
        warehouse.register_sample(1, 1, 1, "cli sample")
        workflow = SequencingWorkflow(warehouse)
        counts = workflow.run_all(
            1, 1, 1, reads, kind=args.kind, hybrid=not args.no_hybrid
        )
        print(
            f"phases done in {time.perf_counter() - started:.1f}s: "
            f"{counts['reads']} reads, {counts['alignments']} alignments, "
            f"{counts['tertiary']} tertiary rows"
        )
        if args.kind == "dge":
            tags_path = out_dir / "tags.txt"
            with open(tags_path, "w", encoding="ascii") as handle:
                for t_id, seq, freq in warehouse.db.query(
                    "SELECT t_id, t_seq, t_frequency FROM Tag ORDER BY t_id"
                ):
                    handle.write(f"{t_id}\t{freq}\t{seq}\n")
            expr_path = out_dir / "expression.txt"
            with open(expr_path, "w", encoding="ascii") as handle:
                for name, total, count in warehouse.db.query(
                    """
                    SELECT name, total_freq, tag_count FROM GeneExpression
                    JOIN Gene ON (ge_g_id = g_id)
                    ORDER BY total_freq DESC
                    """
                ):
                    handle.write(f"{name}\t{total}\t{count}\n")
            print(f"wrote {tags_path} and {expr_path}")
        else:
            from .genomics.fasta import FastaRecord

            id_to_name = {
                v: k for k, v in warehouse.reference_names.items()
            }
            consensus_path = out_dir / "consensus.fasta"
            records = [
                FastaRecord(
                    f"{id_to_name[rs_id]}_consensus",
                    seq,
                    f"start={start}",
                )
                for rs_id, start, seq in warehouse.db.query(
                    "SELECT c_rs_id, c_start, c_seq FROM Consensus"
                )
            ]
            write_fasta(records, consensus_path)
            print(f"wrote {consensus_path}")
        provenance = workflow.provenance(1, 1, 1)
        log_path = out_dir / "provenance.txt"
        with open(log_path, "w", encoding="ascii") as handle:
            for phase, tool, params, rows_out in provenance:
                handle.write(f"{phase}\t{tool}\t{rows_out}\t{params}\n")
        print(f"wrote {log_path}")
    return 0


# ---------------------------------------------------------------------------
# storage-report
# ---------------------------------------------------------------------------


def cmd_storage_report(args: argparse.Namespace) -> int:
    reference = list(read_fasta(args.reference))
    reads = list(read_fastq(args.fastq))
    aligner = ShortReadAligner(reference)
    alignments = [
        hit for _read, hit in aligner.align_all(reads) if hit is not None
    ]
    scenario = ScenarioData(
        kind=args.kind, reads=reads, alignments=alignments
    )
    table = measure_storage(scenario, include_udt=not args.no_udt)
    print(
        format_table(
            table,
            f"Storage efficiency — {args.fastq} "
            f"({len(reads)} reads, {len(alignments)} alignments)",
        )
    )
    return 0


# ---------------------------------------------------------------------------
# search
# ---------------------------------------------------------------------------


def cmd_search(args: argparse.Namespace) -> int:
    from .genomics.qgram import QGramIndex

    index = QGramIndex(q=min(8, max(4, len(args.pattern) // 2)))
    reads = {}
    for i, record in enumerate(read_fastq(args.fastq), start=1):
        reads[i] = record
        index.add(i, record.sequence)
    matches = list(
        index.search_approximate(args.pattern, args.mismatches)
    )
    print(
        f"{len(matches)} matches for {args.pattern!r} "
        f"(<= {args.mismatches} mismatches) in {len(reads)} reads"
    )
    for match in matches[: args.limit]:
        record = reads[match.sequence_id]
        print(
            f"  {record.name}  pos {match.position}  "
            f"mismatches {match.mismatches}  {record.sequence}"
        )
    if len(matches) > args.limit:
        print(f"  ... {len(matches) - args.limit} more")
    return 0


# ---------------------------------------------------------------------------
# metrics
# ---------------------------------------------------------------------------

#: workload run by ``metrics`` when no --sql is given: enough DDL/DML to
#: populate every counter family (heap, index, aggregate execution)
_METRICS_DEMO = (
    "CREATE TABLE Read (r_id INT PRIMARY KEY, tile INT, seq VARCHAR(40))",
    "INSERT INTO Read VALUES "
    "(1, 1, 'ACGTACGT'), (2, 1, 'TTGACCAA'), (3, 2, 'ACGTTTTT'), "
    "(4, 2, 'GGGGACGT'), (5, 3, 'CCCCCCCC')",
    "SELECT tile, COUNT(*) FROM Read GROUP BY tile ORDER BY tile",
    "SELECT seq FROM Read WHERE r_id = 3",
)


def _print_view(db, view_name: str) -> None:
    columns = [c.name for c in db.catalog.table(view_name).schema.columns]
    rows = db.query(f"SELECT * FROM {view_name}")
    print(view_name)
    print("-" * len(view_name))
    print("  " + " | ".join(columns))
    for row in rows:
        print("  " + " | ".join(str(v) for v in row))
    print()


def cmd_metrics(args: argparse.Namespace) -> int:
    from .engine import Database
    from .engine.errors import EngineError

    with Database(default_dop=args.dop) as db:
        db.execute("SET STATISTICS TIME ON")
        db.execute("SET STATISTICS IO ON")
        for sql in args.sql or _METRICS_DEMO:
            print(f"> {sql}")
            try:
                result = db.execute(sql)
            except EngineError as exc:
                print(f"error: {exc}", file=sys.stderr)
                return 1
            for message in db.messages:
                print(f"  {message}")
            if hasattr(result, "rows"):
                for row in result.rows[: args.limit]:
                    print(f"  {row}")
        print()
        db.execute("SET STATISTICS TIME OFF")
        db.execute("SET STATISTICS IO OFF")
        if args.format == "prometheus":
            print(db.metrics_prometheus(), end="")
        else:
            for view_name in (
                "sys_dm_exec_query_stats",
                "sys_dm_db_index_stats",
                "sys_dm_io_stats",
                "sys_dm_os_workers",
            ):
                _print_view(db, view_name)
    return 0


# ---------------------------------------------------------------------------
# cache
# ---------------------------------------------------------------------------

#: workload run by ``cache`` when no --sql is given: a hot parameterized
#: statement (repeated point lookups with different literals), a skewed
#: predicate that exercises the sniffing guard machinery, and an EXPLAIN
#: so the cache note shows up in plan text
_CACHE_DEMO = (
    "CREATE TABLE probe (p_id INT PRIMARY KEY, gene VARCHAR(16), hits INT)",
    "INSERT INTO probe VALUES "
    + ", ".join(
        f"({i}, 'g{i % 11}', {i * 7 % 101})" for i in range(1, 257)
    ),
    "UPDATE STATISTICS probe",
    "SELECT gene, hits FROM probe WHERE p_id = 17",
    "SELECT gene, hits FROM probe WHERE p_id = 42",
    "SELECT gene, hits FROM probe WHERE p_id = 99",
    "SELECT COUNT(*) FROM probe WHERE hits > 50",
    "SELECT COUNT(*) FROM probe WHERE hits > 90",
    "EXPLAIN SELECT gene, hits FROM probe WHERE p_id = 7",
)


def cmd_cache(args: argparse.Namespace) -> int:
    """Run SQL against a cache-armed session and dump the plan-cache
    DMVs (``repro-genomics cache``)."""
    from .engine import Database
    from .engine.errors import EngineError

    with Database(default_dop=args.dop) as db:
        for sql in args.sql or _CACHE_DEMO:
            print(f"> {sql}")
            try:
                result = db.execute(sql)
            except EngineError as exc:
                print(f"error: {exc}", file=sys.stderr)
                return 1
            for message in db.messages:
                print(f"  {message}")
            if isinstance(result, str):  # EXPLAIN plan text
                print(result)
            elif hasattr(result, "rows"):
                for row in result.rows[: args.limit]:
                    print(f"  {row}")
        print()
        if args.clear:
            dropped = db.plan_cache.clear()
            print(f"cleared {dropped} cached plan(s)")
            print()
        for view_name in (
            "sys_dm_exec_cached_plans",
            "sys_dm_exec_plan_cache_stats",
        ):
            _print_view(db, view_name)
    return 0


# ---------------------------------------------------------------------------
# trace
# ---------------------------------------------------------------------------

#: workload run by ``trace`` when no --sql is given: a dop-2 parallel
#: aggregate executed twice (so the query store accumulates runtime
#: rows) plus an EXPLAIN ANALYZE (so operator spans land in the trace)
_TRACE_DEMO = (
    "CREATE TABLE readings (r_id INT PRIMARY KEY, grp INT, amount INT)",
    "INSERT INTO readings VALUES "
    + ", ".join(f"({i}, {i % 8}, {i * 3 % 97})" for i in range(1, 513)),
    "SELECT grp, COUNT(*), SUM(amount), MAX(amount) FROM readings "
    "GROUP BY grp OPTION (MAXDOP 2)",
    "SELECT grp, COUNT(*), SUM(amount), MAX(amount) FROM readings "
    "GROUP BY grp OPTION (MAXDOP 2)",
    "EXPLAIN ANALYZE SELECT grp, COUNT(*), SUM(amount), MAX(amount) "
    "FROM readings GROUP BY grp OPTION (MAXDOP 2)",
)


def cmd_trace(args: argparse.Namespace) -> int:
    from .engine import Database
    from .engine.errors import EngineError

    with Database(default_dop=args.dop) as db:
        for sql in args.sql or _TRACE_DEMO:
            print(f"> {sql}")
            try:
                result = db.execute(sql)
            except EngineError as exc:
                print(f"error: {exc}", file=sys.stderr)
                return 1
            if isinstance(result, str):  # EXPLAIN plan text
                print(result)
            trace = db.last_trace()
            if trace is not None:
                print(trace.render())
                print()
        if args.out:
            # export before the DMV dumps below add their own traces
            db.write_trace(args.out, last_only=args.last_only)
            print(f"wrote Chrome trace JSON to {args.out}")
            print()
        for view_name in (
            "sys_dm_os_wait_stats",
            "sys_dm_query_store_query",
            "sys_dm_query_store_runtime_stats",
        ):
            _print_view(db, view_name)
    return 0


# ---------------------------------------------------------------------------
# lint
# ---------------------------------------------------------------------------


def _split_sql_script(text: str) -> List[str]:
    """Split a .sql script into statements (``;`` terminators, ``--``
    line and ``/* */`` block comments stripped, quoted strings
    respected)."""
    statements: List[str] = []
    current: List[str] = []
    in_string = False
    i = 0
    while i < len(text):
        ch = text[i]
        if in_string:
            current.append(ch)
            if ch == "'":
                if i + 1 < len(text) and text[i + 1] == "'":
                    current.append("'")
                    i += 2
                    continue
                in_string = False
            i += 1
            continue
        if ch == "'":
            in_string = True
            current.append(ch)
            i += 1
            continue
        if ch == "-" and text[i : i + 2] == "--":
            newline = text.find("\n", i)
            i = len(text) if newline < 0 else newline
            continue
        if ch == "/" and text[i : i + 2] == "/*":
            end = text.find("*/", i + 2)
            i = len(text) if end < 0 else end + 2
            current.append(" ")  # comments separate tokens
            continue
        if ch == ";":
            statement = "".join(current).strip()
            if statement:
                statements.append(statement)
            current = []
            i += 1
            continue
        current.append(ch)
        i += 1
    tail = "".join(current).strip()
    if tail:
        statements.append(tail)
    return statements


def _lint_register_builtins(db) -> None:
    """Install every shipped UDx library, collecting verifier findings."""
    from .core.indb_align import register_alignment_extensions
    from .core.probabilistic import register_probabilistic_extensions
    from .core.wrappers import register_extensions
    from .engine.uda_library import register_statistics
    from .engine.verify.udx_verifier import VerificationError

    for register in (
        register_statistics,
        register_extensions,
        register_alignment_extensions,
        register_probabilistic_extensions,
    ):
        try:
            register(db)
        except VerificationError:
            pass  # findings are recorded in the library; caller drains them


def _lint_python_file(db, path: Path, diagnostics: List) -> None:
    """Import one UDx module and run its ``register(db)`` through the
    verifier; findings (including rejections) are collected.

    Note: importing the module executes its top-level code — the same
    way ``CREATE ASSEMBLY`` loads the assembly it is about to verify.
    The registered bodies themselves are only parsed, never called."""
    import importlib.util

    from .engine.verify.udx_verifier import Diagnostic, VerificationError

    spec = importlib.util.spec_from_file_location(
        f"_lint_{path.stem}", path
    )
    module = importlib.util.module_from_spec(spec)
    try:
        spec.loader.exec_module(module)
    except Exception as exc:
        diagnostics.append(
            Diagnostic(
                "LINT-LOAD", "error", str(path), f"module failed to load: {exc}"
            )
        )
        return
    register = getattr(module, "register", None)
    if register is None:
        diagnostics.append(
            Diagnostic(
                "LINT-LOAD",
                "error",
                str(path),
                "UDx module defines no register(db) entry point",
            )
        )
        return
    try:
        register(db)
    except VerificationError:
        pass  # findings are recorded in the library; caller drains them


def _lint_sql_file(db, path: Path, diagnostics: List) -> None:
    """Statically check a .sql script: every statement is parsed,
    bound, and (for queries) planned so the plan-time lint — and the
    plan sanitizer, which ``Database.check`` force-arms — fires, but
    queries and DML are never executed; only schema statements apply,
    against the scratch lint catalog, so later statements bind.
    Findings land in the lint log; bind errors become diagnostics.
    ``-- lint: ignore RULE`` pragmas anywhere in the file suppress
    those rules for the whole script (statement splitting strips
    comments, so file scope is the CLI's suppression granularity)."""
    from .engine.errors import EngineError
    from .engine.verify.sql_lint import parse_suppressions
    from .engine.verify.udx_verifier import Diagnostic

    text = path.read_text(encoding="utf-8")
    suppressed = parse_suppressions(text)
    before = len(db.lint_rows())
    for statement in _split_sql_script(text):
        try:
            db.check(statement)
        except EngineError as exc:
            diagnostics.append(
                Diagnostic(
                    "LINT-SQL",
                    "error",
                    str(path),
                    f"{type(exc).__name__}: {exc}",
                )
            )
    for origin, obj, rule, severity, message, _source in (
        db.lint_rows()[before:]
    ):
        if rule in suppressed:
            continue
        diagnostics.append(Diagnostic(rule, severity, f"{path}:{obj}", message))


def cmd_lint(args: argparse.Namespace) -> int:
    from .engine import Database
    from .engine.verify.udx_verifier import Diagnostic

    diagnostics: List = []
    drained = 0

    def drain_registrations(db) -> None:
        """Pick up findings of registrations that *succeeded* (warnings
        and infos never raise)."""
        nonlocal drained
        rows = db.catalog.functions.verification_rows()
        for kind, obj, rule, severity, message, _source in rows[drained:]:
            diagnostics.append(
                Diagnostic(rule, severity, f"{kind} {obj}", message)
            )
        drained = len(rows)

    with Database() as db:
        drained = len(db.catalog.functions.verification_rows())
        if not args.no_builtins:
            _lint_register_builtins(db)
            drain_registrations(db)
        for raw in args.paths:
            path = Path(raw)
            if path.is_dir():
                targets = sorted(path.rglob("*.sql"))
                # a directory may mix UDx modules with ordinary scripts;
                # only modules exposing register(db) are verifiable
                targets += [
                    p
                    for p in sorted(path.rglob("*.py"))
                    if "def register(" in p.read_text(encoding="utf-8")
                ]
            else:
                targets = [path]
            for target in targets:
                if target.suffix == ".sql":
                    _lint_sql_file(db, target, diagnostics)
                elif target.suffix == ".py":
                    _lint_python_file(db, target, diagnostics)
                    drain_registrations(db)

    shown = [
        d
        for d in diagnostics
        if args.verbose or d.severity in ("warning", "error")
    ]
    for d in shown:
        print(d)
    errors = sum(1 for d in diagnostics if d.severity == "error")
    warnings = sum(1 for d in diagnostics if d.severity == "warning")
    print(
        f"lint: {errors} error(s), {warnings} warning(s), "
        f"{len(diagnostics) - errors - warnings} info"
    )
    return 1 if errors else 0


# ---------------------------------------------------------------------------
# sanitize
# ---------------------------------------------------------------------------


def cmd_sanitize(args: argparse.Namespace) -> int:
    """Plan sanitizer + fork-safety analysis (PLAN-*/FORK-* rules).

    ``--self`` is the CI gate: the fork-safety AST pass over the
    parallel engine's own modules plus the golden plan corpus (Figure
    9/10 shapes and the differential-suite shapes across storage ×
    execution mode × DOP) must produce zero diagnostics. Paths mode
    checks user ``.sql`` scripts (statically planned with the
    sanitizer armed) and ``.py`` modules (fork-safety analysis).
    """
    import json

    from .engine import Database
    from .engine.verify.parallel_safety import analyze_path
    from .engine.verify.plan_corpus import corpus_plans
    from .engine.verify.plan_sanitizer import sanitize_plan

    findings: List = []  # (source, Diagnostic)
    plans_checked = 0
    modules_checked = 0

    if args.self_check:
        from .engine.verify.parallel_safety import (
            DEFAULT_MODULES,
            analyze_fork_safety,
        )

        modules_checked += len(DEFAULT_MODULES)
        for d in analyze_fork_safety():
            findings.append(("engine fork-safety", d))
        for description, plan, database in corpus_plans():
            plans_checked += 1
            for d in sanitize_plan(plan, database):
                findings.append((description, d))

    sql_paths: List[Path] = []
    py_paths: List[Path] = []
    for raw in args.paths:
        path = Path(raw)
        if path.is_dir():
            sql_paths.extend(sorted(path.rglob("*.sql")))
            py_paths.extend(sorted(path.rglob("*.py")))
        elif path.suffix == ".py":
            py_paths.append(path)
        else:
            sql_paths.append(path)
    for path in py_paths:
        modules_checked += 1
        for d in analyze_path(path):
            findings.append((str(path), d))
    if sql_paths:
        with Database() as db:
            for path in sql_paths:
                plans_checked += len(
                    _split_sql_script(path.read_text(encoding="utf-8"))
                )
                diagnostics: List = []
                _lint_sql_file(db, path, diagnostics)
                for d in diagnostics:
                    findings.append((str(path), d))

    for source, d in findings:
        print(f"{source}: {d}")
    errors = sum(1 for _s, d in findings if d.severity == "error")
    warnings = sum(1 for _s, d in findings if d.severity == "warning")
    print(
        f"sanitize: {plans_checked} plan(s), {modules_checked} module(s) "
        f"checked — {errors} error(s), {warnings} warning(s)"
    )
    if args.report:
        payload = {
            "summary": {
                "plans_checked": plans_checked,
                "modules_checked": modules_checked,
                "errors": errors,
                "warnings": warnings,
            },
            "findings": [
                {
                    "source": source,
                    "rule": d.rule,
                    "severity": d.severity,
                    "object": d.obj,
                    "message": d.message,
                }
                for source, d in findings
            ],
        }
        Path(args.report).write_text(
            json.dumps(payload, indent=2) + "\n", encoding="utf-8"
        )
        print(f"wrote report to {args.report}")
    return 1 if findings else 0


# ---------------------------------------------------------------------------
# argument parsing
# ---------------------------------------------------------------------------


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-genomics",
        description="High-throughput genomics data management "
        "(CIDR 2009 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sim = sub.add_parser("simulate", help="generate a synthetic dataset")
    sim.add_argument("--kind", choices=("dge", "resequencing"), default="dge")
    sim.add_argument("--out-dir", required=True)
    sim.add_argument("--reads", type=int, default=20_000)
    sim.add_argument("--chromosomes", type=int, default=2)
    sim.add_argument("--chromosome-length", type=int, default=50_000)
    sim.add_argument("--genes", type=int, default=60)
    sim.add_argument("--seed", type=int, default=7)
    sim.set_defaults(func=cmd_simulate)

    pipe = sub.add_parser("pipeline", help="run phases 1-3 on a lane")
    pipe.add_argument("--kind", choices=("dge", "resequencing"), required=True)
    pipe.add_argument("--fastq", required=True)
    pipe.add_argument("--reference", required=True)
    pipe.add_argument("--genes", help="genes.tsv (required for dge)")
    pipe.add_argument("--out-dir", required=True)
    pipe.add_argument("--name", default="cli experiment")
    pipe.add_argument(
        "--no-hybrid",
        action="store_true",
        help="import rows directly instead of via FILESTREAM + TVF",
    )
    pipe.add_argument(
        "--dop",
        type=int,
        default=4,
        help="default degree of parallelism for warehouse queries",
    )
    pipe.set_defaults(func=cmd_pipeline)

    storage = sub.add_parser(
        "storage-report", help="Table-1/2-style storage comparison"
    )
    storage.add_argument("--fastq", required=True)
    storage.add_argument("--reference", required=True)
    storage.add_argument(
        "--kind", choices=("dge", "resequencing"), default="resequencing"
    )
    storage.add_argument("--no-udt", action="store_true")
    storage.set_defaults(func=cmd_storage_report)

    search = sub.add_parser("search", help="q-gram search over a lane")
    search.add_argument("--fastq", required=True)
    search.add_argument("--pattern", required=True)
    search.add_argument("--mismatches", type=int, default=0)
    search.add_argument("--limit", type=int, default=10)
    search.set_defaults(func=cmd_search)

    metrics = sub.add_parser(
        "metrics",
        help="run SQL under SET STATISTICS and dump the system views",
    )
    metrics.add_argument(
        "--sql",
        action="append",
        help="statement to run (repeatable; default: a demo workload)",
    )
    metrics.add_argument(
        "--format",
        choices=("views", "prometheus"),
        default="views",
        help="dump the DMV-style views or Prometheus exposition text",
    )
    metrics.add_argument(
        "--limit", type=int, default=10, help="result rows shown per query"
    )
    metrics.add_argument(
        "--dop",
        type=int,
        default=4,
        help="default degree of parallelism (SET MAX_DOP caps it "
        "per session; parallel plans run on the worker pool and show "
        "up in sys_dm_os_workers)",
    )
    metrics.set_defaults(func=cmd_metrics)

    cache = sub.add_parser(
        "cache",
        help="run SQL against the plan cache and dump "
        "sys_dm_exec_cached_plans / plan-cache counters",
    )
    cache.add_argument(
        "--sql",
        action="append",
        help="statement to run (repeatable; default: a hot "
        "parameterized demo workload)",
    )
    cache.add_argument(
        "--limit", type=int, default=5, help="result rows shown per query"
    )
    cache.add_argument(
        "--clear",
        action="store_true",
        help="clear the plan cache after the workload (before the dump)",
    )
    cache.add_argument(
        "--dop",
        type=int,
        default=4,
        help="default degree of parallelism",
    )
    cache.set_defaults(func=cmd_cache)

    trace = sub.add_parser(
        "trace",
        help="run SQL with tracing and print/export the statement "
        "trace trees (Chrome trace-event JSON via --out)",
    )
    trace.add_argument(
        "--sql",
        action="append",
        help="statement to run (repeatable; default: a dop-2 parallel "
        "aggregate demo workload)",
    )
    trace.add_argument(
        "--out",
        help="write retained traces as Chrome trace-event JSON "
        "(chrome://tracing / Perfetto)",
    )
    trace.add_argument(
        "--last-only",
        action="store_true",
        help="export only the final statement's trace",
    )
    trace.add_argument(
        "--dop",
        type=int,
        default=4,
        help="default degree of parallelism",
    )
    trace.set_defaults(func=cmd_trace)

    lint = sub.add_parser(
        "lint",
        help="statically verify UDx modules and lint .sql scripts "
        "(exit 1 on errors); queries are planned, never executed",
    )
    lint.add_argument(
        "paths",
        nargs="*",
        help=".sql scripts (planned and bound, not executed), UDx .py "
        "modules (imported so their register(db) entry point can run "
        "through the verifier), or directories of either",
    )
    lint.add_argument(
        "--no-builtins",
        action="store_true",
        help="skip verifying the shipped UDx registry",
    )
    lint.add_argument(
        "--verbose",
        action="store_true",
        help="also print info-level findings",
    )
    lint.set_defaults(func=cmd_lint)

    sanitize = sub.add_parser(
        "sanitize",
        help="run the plan sanitizer + fork-safety analyzer "
        "(PLAN-*/FORK-* rules; exit 1 on any finding)",
    )
    sanitize.add_argument(
        "paths",
        nargs="*",
        help=".sql scripts (statically planned with the sanitizer "
        "armed), .py modules (fork-safety AST analysis), or "
        "directories of either",
    )
    sanitize.add_argument(
        "--self",
        dest="self_check",
        action="store_true",
        help="verify the engine itself: fork-safety over the parallel "
        "engine's source plus zero diagnostics over the golden plan "
        "corpus (the CI gate)",
    )
    sanitize.add_argument(
        "--report",
        help="write findings + summary as JSON (CI uploads this as "
        "the diagnostic report artifact)",
    )
    sanitize.set_defaults(func=cmd_sanitize)

    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
