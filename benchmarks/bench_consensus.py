"""Experiment S533 — Section 5.3.3: the consensus-calling study.

Three measurements from the paper's tertiary-analysis discussion:

1. **join throughput** — "the query processor can do this join in about
   7 seconds (with a warm buffer pool) by using a parallel merge join.
   This corresponds to about 1.6 million alignments per second." We
   measure alignments/second through the merge join (read-clustered
   design) and through the hash join (position-clustered design).

2. **pivot plan vs sliding window** — the conceptually clean
   PivotAlignment → group → CallBase → AssembleSequence pipeline
   materialises an intermediate of ~read_length × alignments rows
   ("a huge intermediate result ... not practical"); the
   AssembleConsensus UDA streams in one ordered pass with O(window)
   state. We measure both times and the intermediate sizes.

3. **result BLOB size** — the per-chromosome consensus is a large
   string (100 MB/chromosome for human; scaled here), the "large
   internal BLOB result" the paper flags.

Report: ``benchmarks/results/consensus_s533.txt``.
"""

import time

import pytest

from bench_common import save_bench_json, save_report
from repro.core import GenomicsWarehouse, queries
from repro.engine.executor import CrossApply, MergeJoin


@pytest.fixture(scope="module")
def read_clustered(reference, reseq_reads, reseq_alignments, reseq_read_ids):
    wh = GenomicsWarehouse(alignment_clustering="read")
    wh.load_reference(reference)
    wh.register_experiment(1, "x", "resequencing")
    wh.register_sample_group(1, 1, "g")
    wh.register_sample(1, 1, 1, "s")
    wh.import_lane_relational(1, 1, 1, reseq_reads)
    wh.load_alignments(1, 1, 1, reseq_alignments, reseq_read_ids)
    list(wh.db.table("Read").scan())
    list(wh.db.table("Alignment").scan())
    yield wh
    wh.close()


JOIN_SQL = """
SELECT a_id, a_pos, short_read_seq FROM Alignment
JOIN [Read] ON (a_e_id = r_e_id AND a_sg_id = r_sg_id
                AND a_s_id = r_s_id AND a_r_id = r_id)
WHERE a_e_id = 1 AND a_sg_id = 1 AND a_s_id = 1
"""


def _contains(op, kind):
    if isinstance(op, kind):
        return True
    return any(_contains(child, kind) for child in op.children())


class TestBenchmarks:
    def test_bench_merge_join(self, benchmark, read_clustered):
        plan = read_clustered.db.plan(JOIN_SQL)
        assert _contains(plan, MergeJoin)

        def run():
            return len(list(read_clustered.db.plan(JOIN_SQL)))

        joined = benchmark.pedantic(run, rounds=3, iterations=1)
        assert joined > 0

    def test_bench_hash_join(self, benchmark, reseq_warehouse):
        def run():
            return len(list(reseq_warehouse.db.plan(JOIN_SQL)))

        joined = benchmark.pedantic(run, rounds=3, iterations=1)
        assert joined > 0

    def test_bench_sliding_window_consensus(self, benchmark, reseq_warehouse):
        rows = benchmark.pedantic(
            queries.execute_query3_sliding,
            args=(reseq_warehouse.db, 1, 1, 1),
            rounds=1,
            iterations=1,
        )
        assert len(rows) >= 1

    def test_bench_pivot_consensus(self, benchmark, reseq_warehouse):
        rows = benchmark.pedantic(
            queries.execute_query3_pivot,
            args=(reseq_warehouse.db, 1, 1, 1),
            rounds=1,
            iterations=1,
        )
        assert len(rows) >= 1


def test_s533_report(benchmark, read_clustered, reseq_warehouse):
    def measure():
        results = {}
        # 1. merge join rate (read-clustered design, warm pool)
        plan = read_clustered.db.plan(JOIN_SQL)
        start = time.perf_counter()
        joined = len(list(plan))
        merge_elapsed = time.perf_counter() - start
        results["joined"] = joined
        results["merge_rate"] = joined / merge_elapsed
        results["merge_elapsed"] = merge_elapsed

        # 2. pivot vs sliding window (position-clustered design)
        db = reseq_warehouse.db
        pivot_plan = db.plan(queries.query3_pivot_sql(1, 1, 1))
        start = time.perf_counter()
        pivot_rows = list(pivot_plan)
        results["pivot_elapsed"] = time.perf_counter() - start
        apply_op = _find(pivot_plan, CrossApply)
        results["pivot_intermediate"] = apply_op.rows_out if apply_op else 0

        sliding_plan = db.plan(queries.query3_sliding_window_sql(1, 1, 1))
        start = time.perf_counter()
        sliding_rows = list(sliding_plan)
        results["sliding_elapsed"] = time.perf_counter() - start
        results["consensus_bytes"] = sum(
            len(piece.sequence) for _rs, piece in sliding_rows
        )
        results["chromosomes"] = len(sliding_rows)
        assert {k: (p.start, p.sequence) for k, p in pivot_rows} == {
            k: (p.start, p.sequence) for k, p in sliding_rows
        }
        return results

    def _find(op, kind):
        if isinstance(op, kind):
            return op
        for child in op.children():
            hit = _find(child, kind)
            if hit is not None:
                return hit
        return None

    results = benchmark.pedantic(measure, rounds=1, iterations=1)

    lines = [
        "Section 5.3.3 (reproduced): consensus calling",
        "=" * 72,
        f"alignments joined with reads:      {results['joined']:>12,}",
        f"merge join elapsed (warm pool):    {results['merge_elapsed']:>12.3f} s",
        f"merge join rate:                   {results['merge_rate']:>12,.0f} alignments/s",
        "  (paper: ~1.6M alignments/s on 4 cores, native engine)",
        "-" * 72,
        f"pivot-plan elapsed:                {results['pivot_elapsed']:>12.3f} s",
        f"pivot intermediate rows:           {results['pivot_intermediate']:>12,}",
        f"sliding-window UDA elapsed:        {results['sliding_elapsed']:>12.3f} s",
        f"pivot / sliding ratio:             {results['pivot_elapsed'] / results['sliding_elapsed']:>12.1f}x",
        "-" * 72,
        f"consensus BLOB result:             {results['consensus_bytes']:>12,} bytes "
        f"across {results['chromosomes']} chromosomes",
        "  (paper: >100 MB per human chromosome — needs a streaming-",
        "   capable sequence type; scaled down here)",
    ]
    save_report("consensus_s533.txt", "\n".join(lines))
    save_bench_json(
        "consensus_s533",
        wall_time=results["merge_elapsed"],
        rows=results["joined"],
        counters={
            "merge_rate_rows_per_s": round(results["merge_rate"], 1),
            "pivot_intermediate_rows": results["pivot_intermediate"],
            "consensus_bytes": results["consensus_bytes"],
        },
        extra={
            "pivot_elapsed_s": round(results["pivot_elapsed"], 6),
            "sliding_elapsed_s": round(results["sliding_elapsed"], 6),
            "chromosomes": results["chromosomes"],
        },
    )

    # shape assertions
    assert results["sliding_elapsed"] < results["pivot_elapsed"]
    # the pivoted intermediate is ~read_length times the alignment count
    assert results["pivot_intermediate"] > results["joined"] * 10
