"""Experiments F9 + F10 — Figures 9 and 10: the query plans.

The paper's figures are showplan screenshots; we regenerate them as text
plans from the same queries:

- **Figure 9** — the parallel plan for Query 1 (unique-read binning):
  repartition streams → partial hash aggregates per worker → gather
  streams → sequence project (ROW_NUMBER);
- **Figure 10** — the plan for Query 3 (consensus): ordered access to
  the alignments (clustered index), a join with the Read table, and a
  streaming aggregate — "a non-blocking, parallelized query plan ...
  processing the alignments in order". Both physical designs are shown:
  read-id clustering yields the paper's parallel *merge join*; position
  clustering feeds the sliding-window UDA with no sort.

Reports: ``benchmarks/results/figure9_query1_plan.txt`` and
``figure10_query3_plan.txt``.
"""

import pytest

from bench_common import save_bench_json, save_report
from repro.core import GenomicsWarehouse, queries


def test_figure9_query1_plan(benchmark, dge_warehouse):
    plan = benchmark.pedantic(
        dge_warehouse.db.explain,
        args=(queries.query1_binning_sql(1, 1, 1, maxdop=4),),
        rounds=3,
        iterations=1,
    )
    text = (
        "Figure 9 (reproduced): Parallel Query Plan for "
        "Unique-Read Binning in SQL (Query 1)\n"
        + "=" * 72 + "\n" + plan
    )
    save_report("figure9_query1_plan.txt", text)
    assert "Repartition Streams" in plan
    assert "Gather Streams" in plan
    assert "ROW_NUMBER" in plan
    assert "Clustered Index Seek [Read]" in plan
    assert "est. rows=" in plan and "cost=" in plan


def test_figure10_query3_plan(benchmark, reseq_warehouse, reference, reseq_reads):
    position_plan = benchmark.pedantic(
        reseq_warehouse.db.explain,
        args=(queries.query3_sliding_window_sql(1, 1, 1),),
        rounds=3,
        iterations=1,
    )
    # the read-clustered design: the paper's parallel merge join
    read_clustered = GenomicsWarehouse(alignment_clustering="read")
    try:
        read_clustered.load_reference(reference)
        read_clustered.register_experiment(1, "x", "resequencing")
        read_clustered.register_sample_group(1, 1, "g")
        read_clustered.register_sample(1, 1, 1, "s")
        read_clustered.import_lane_relational(1, 1, 1, reseq_reads[:2000])
        read_clustered.align_reads(1, 1, 1)
        merge_plan = read_clustered.db.explain(
            """
            SELECT a_id, short_read_seq, quals FROM Alignment
            JOIN [Read] ON (a_e_id = r_e_id AND a_sg_id = r_sg_id
                            AND a_s_id = r_s_id AND a_r_id = r_id)
            WHERE a_e_id = 1 AND a_sg_id = 1 AND a_s_id = 1
            """
        )
    finally:
        read_clustered.close()
    text = (
        "Figure 10 (reproduced): Plans for Consensus Building in SQL "
        "(Query 3)\n" + "=" * 72 + "\n\n"
        "(a) Alignment clustered by position: ordered seek feeds the\n"
        "    sliding-window UDA through a Stream Aggregate, no Sort:\n\n"
        + position_plan
        + "\n\n(b) Alignment clustered by read id: the alignment-read join\n"
        "    runs as the paper's merge join over both clustered orders:\n\n"
        + merge_plan
    )
    save_report("figure10_query3_plan.txt", text)
    assert "Stream Aggregate" in position_plan
    assert "Sort" not in position_plan
    assert "Merge Join" in merge_plan
    assert "est. rows=" in merge_plan and "cost=" in merge_plan


def test_bench_planning_cost(benchmark, reseq_warehouse):
    """Optimizer overhead: planning Query 3 (parse + plan, no execute)."""
    sql = queries.query3_sliding_window_sql(1, 1, 1)
    plan = benchmark(reseq_warehouse.db.plan, sql)
    assert plan is not None


def _walk_ops(op):
    yield op
    for child in op.children():
        yield from _walk_ops(child)


def test_estimates_track_actuals(reseq_warehouse):
    """Estimate quality: with fresh statistics, the access-path estimates
    of Query 3's plan stay within 4x of the actual row counts that
    EXPLAIN ANALYZE observes."""
    db = reseq_warehouse.db
    db.execute("UPDATE STATISTICS Alignment")
    db.execute("UPDATE STATISTICS [Read]")
    op = db.plan(queries.query3_sliding_window_sql(1, 1, 1))
    for _ in op:
        pass
    assert "actual rows=" in op.explain(analyze=True)
    checked = 0
    worst_drift = 1.0
    for node in _walk_ops(op):
        if list(node.children()) or node.est_rows is None:
            continue  # drift is judged at the leaves (access paths)
        est, actual = node.est_rows, node.rows_out
        assert est <= max(actual, 1) * 4, (node, est, actual)
        assert actual <= max(est, 1) * 4, (node, est, actual)
        drift = max(est, 1) / max(actual, 1)
        worst_drift = max(worst_drift, drift, 1 / drift)
        checked += 1
    assert checked > 0
    save_bench_json(
        "queryplans",
        counters={"leaves_checked": checked},
        extra={"worst_leaf_drift": round(worst_drift, 3)},
    )
