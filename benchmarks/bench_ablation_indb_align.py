"""Ablation A4 — in-database alignment vs. the external tool pipeline.

Section 5.3.2 sketches the alternative to the hybrid design: "we can
implement the alignment algorithms directly in the DBMS as stored
procedures." Both paths exist in this reproduction and share the *same*
aligner core, so comparing them isolates pure data-management overhead:

- **external (MAQ-style)** — export FASTQ + reference FASTA, convert to
  binary intermediates (.bfq/.bfa), align to a binary .map, dump the
  "human readable" text, parse it back, import into ``Alignment``:
  the paper's Section 2.1 format zoo, end to end;
- **in-database** — ``EXEC usp_align_sample``: reads stream out of the
  ``Read`` table, alignments stream into ``Alignment``; no intermediate
  files at all.

Report: ``benchmarks/results/ablation_indb_align.txt``.
"""

import time

import pytest

from bench_common import SCALE, save_bench_json, save_report
from repro.baselines.maq_tool import MaqTool
from repro.core import GenomicsWarehouse, register_alignment_extensions
from repro.genomics.fasta import write_fasta
from repro.genomics.fastq import write_fastq
from repro.genomics.maqmap import read_text_map

N_READS = int(10_000 * SCALE)


@pytest.fixture(scope="module")
def warehouse(reference, reseq_reads):
    wh = GenomicsWarehouse()
    wh.load_reference(reference)
    wh.register_experiment(1, "x", "resequencing")
    wh.register_sample_group(1, 1, "g")
    wh.register_sample(1, 1, 1, "s")
    wh.import_lane_relational(1, 1, 1, reseq_reads[:N_READS])
    register_alignment_extensions(wh.db)
    yield wh
    wh.close()


def run_external(warehouse, reference, reads, workdir):
    """The full file-centric round trip, timed per stage."""
    timings = {}
    start = time.perf_counter()
    fastq = workdir / "lane.fastq"
    fasta = workdir / "ref.fasta"
    write_fastq(reads, fastq)
    write_fasta(reference, fasta)
    timings["export"] = time.perf_counter() - start

    tool = MaqTool(workdir / "maq")
    start = time.perf_counter()
    bfq = tool.fastq2bfq(fastq)
    bfa = tool.fasta2bfa(fasta)
    timings["convert"] = time.perf_counter() - start
    start = time.perf_counter()
    map_file = tool.map(bfq, bfa)
    timings["align"] = time.perf_counter() - start
    start = time.perf_counter()
    text = tool.mapview(map_file)
    timings["mapview"] = time.perf_counter() - start

    start = time.perf_counter()
    read_ids = {r.name: i for i, r in enumerate(reads, start=1)}
    hits = list(read_text_map(text))
    count = warehouse.load_alignments(1, 1, 1, hits, read_ids)
    timings["import"] = time.perf_counter() - start
    intermediates = sum(
        p.stat().st_size for p in (fastq, fasta, bfq, bfa, map_file, text)
    )
    return count, timings, intermediates


def test_bench_in_database_alignment(benchmark, warehouse):
    def run():
        warehouse.db.execute("TRUNCATE TABLE Alignment")
        return warehouse.db.call_procedure("usp_align_sample", 1, 1, 1, 2)

    count = benchmark.pedantic(run, rounds=1, iterations=1)
    assert count > N_READS * 0.9


def test_ablation_indb_align_report(
    benchmark, warehouse, reference, reseq_reads, tmp_path_factory
):
    reads = reseq_reads[:N_READS]

    def measure():
        warehouse.db.execute("TRUNCATE TABLE Alignment")
        start = time.perf_counter()
        indb_count = warehouse.db.call_procedure(
            "usp_align_sample", 1, 1, 1, 2
        )
        indb_elapsed = time.perf_counter() - start
        warehouse.db.execute("TRUNCATE TABLE Alignment")
        ext_count, ext_timings, intermediates = run_external(
            warehouse, reference, reads, tmp_path_factory.mktemp("ext")
        )
        return indb_count, indb_elapsed, ext_count, ext_timings, intermediates

    indb_count, indb_elapsed, ext_count, ext_timings, intermediates = (
        benchmark.pedantic(measure, rounds=1, iterations=1)
    )
    ext_total = sum(ext_timings.values())
    lines = [
        f"Ablation A4: in-database alignment vs external tool pipeline "
        f"({N_READS:,} reads)",
        "=" * 72,
        f"in-database (usp_align_sample):  {indb_elapsed:>9.2f} s,"
        f"  {indb_count:,} alignments, 0 intermediate files",
        "-" * 72,
        "external MAQ-style pipeline:",
    ]
    for stage, seconds in ext_timings.items():
        lines.append(f"  {stage:<10} {seconds:>9.2f} s")
    lines += [
        f"  {'total':<10} {ext_total:>9.2f} s,"
        f"  {ext_count:,} alignments,"
        f"  {intermediates:,} bytes of intermediate files",
        "-" * 72,
        f"data-management overhead of the file-centric path: "
        f"{ext_total - indb_elapsed:+.2f} s "
        f"({(ext_total / indb_elapsed - 1) * 100:.0f}% on top of the "
        "identical aligner core)",
    ]
    save_report("ablation_indb_align.txt", "\n".join(lines))
    save_bench_json(
        "ablation_indb_align",
        wall_time=indb_elapsed,
        rows=indb_count,
        counters={
            "external_alignments": ext_count,
            "intermediate_bytes": intermediates,
        },
        extra={
            "external_total_s": round(ext_total, 6),
            "external_stages_s": {
                stage: round(seconds, 6)
                for stage, seconds in ext_timings.items()
            },
        },
    )

    # same placements from both paths
    assert abs(indb_count - ext_count) <= N_READS * 0.01
    # the external path cannot be faster: it runs the same aligner plus
    # exports, conversions, and re-imports
    assert ext_total > indb_elapsed
