"""Ablation A3 — the bit-packed DNA sequence UDT (future work of §6.1).

"A bit-encoding of the sequences could reduce the size to just about a
quarter. This could be achieved by introducing a corresponding
domain-specific short-read data type." We built that type
(``DnaSequence``: 2-bit for pure ACGT, 4-bit with ambiguity codes) and
measure: storage of the sequence column under VARCHAR vs UDT, and the
scan-time cost the (de)serialisation adds.

Report: ``benchmarks/results/ablation_udt.txt``.
"""

import time

import pytest

from bench_common import SCALE, save_bench_json, save_report
from repro.core.wrappers import register_extensions
from repro.engine import Database

N_ROWS = int(30_000 * SCALE)


def build(sequence_type, reads):
    db = Database()
    register_extensions(db)
    db.execute(
        f"""
        CREATE TABLE seqs (
            id INT PRIMARY KEY,
            seq {sequence_type}
        )
        """
    )
    table = db.table("seqs")
    for i, record in enumerate(reads):
        table.insert((i, record.sequence))
    table.finish_bulk_load()
    return db, table


@pytest.fixture(scope="module")
def reads(reseq_reads):
    return reseq_reads[:N_ROWS]


class TestBenchmarks:
    def test_bench_varchar_load(self, benchmark, reads):
        def load():
            db, table = build("VARCHAR(100)", reads)
            size = table.stored_bytes()
            db.close()
            return size

        assert benchmark.pedantic(load, rounds=2, iterations=1) > 0

    def test_bench_udt_load(self, benchmark, reads):
        def load():
            db, table = build("DnaSequence", reads)
            size = table.stored_bytes()
            db.close()
            return size

        assert benchmark.pedantic(load, rounds=2, iterations=1) > 0


def test_ablation_udt_report(benchmark, reads):
    def measure():
        results = {}
        for type_name in ("VARCHAR(100)", "DnaSequence"):
            db, table = build(type_name, reads)
            results[type_name] = {"bytes": table.stored_bytes()}
            # cold scan: records decoded from storage
            start = time.perf_counter()
            count = sum(1 for _row in table.scan())
            results[type_name]["cold_scan"] = time.perf_counter() - start
            # warm scan: row cache hit
            start = time.perf_counter()
            count = sum(1 for _row in table.scan())
            results[type_name]["warm_scan"] = time.perf_counter() - start
            assert count == len(reads)
            db.close()
        return results

    results = benchmark.pedantic(measure, rounds=1, iterations=1)
    varchar = results["VARCHAR(100)"]
    udt = results["DnaSequence"]
    seq_bytes = sum(len(r.sequence) for r in reads)
    lines = [
        f"Ablation A3: sequence column storage, {N_ROWS:,} x 36 bp reads",
        "=" * 72,
        f"{'design':>16}{'table bytes':>16}{'cold scan s':>14}{'warm scan s':>14}",
        "-" * 72,
        f"{'VARCHAR(100)':>16}{varchar['bytes']:>15,}B"
        f"{varchar['cold_scan']:>14.3f}{varchar['warm_scan']:>14.3f}",
        f"{'DnaSequence':>16}{udt['bytes']:>15,}B"
        f"{udt['cold_scan']:>14.3f}{udt['warm_scan']:>14.3f}",
        "-" * 72,
        f"raw sequence payload: {seq_bytes:,} bytes as text; "
        f"UDT table / VARCHAR table = {udt['bytes'] / varchar['bytes']:.2f}x",
        "Paper's projection: bit-encoding ≈ 1/4 of the text size on the",
        "sequence payload (keys and page overheads dilute the table-level",
        "ratio); decode cost shows up in the cold scan, disappears warm.",
    ]
    save_report("ablation_udt.txt", "\n".join(lines))
    save_bench_json(
        "ablation_udt",
        rows=len(reads),
        counters={
            "varchar_bytes": varchar["bytes"],
            "udt_bytes": udt["bytes"],
            "raw_sequence_bytes": seq_bytes,
        },
        extra={
            "varchar_cold_scan_s": round(varchar["cold_scan"], 6),
            "varchar_warm_scan_s": round(varchar["warm_scan"], 6),
            "udt_cold_scan_s": round(udt["cold_scan"], 6),
            "udt_warm_scan_s": round(udt["warm_scan"], 6),
        },
    )

    assert udt["bytes"] < varchar["bytes"]
    # the sequence payload itself must shrink to ~1/4 + header
    per_row_saving = (varchar["bytes"] - udt["bytes"]) / len(reads)
    assert per_row_saving > 36 * 0.5  # save at least half the text size
