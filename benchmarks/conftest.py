"""Shared benchmark workloads.

Sizes are scaled for a laptop-class single-core run (the paper's lanes
were 490 MB+; we default to tens of thousands of reads). Set
``REPRO_BENCH_SCALE`` to scale every workload up or down, e.g.
``REPRO_BENCH_SCALE=4 pytest benchmarks/``.

Each bench writes its paper-artifact (table / figure text) into
``benchmarks/results/`` — EXPERIMENTS.md indexes those files.
"""

from __future__ import annotations

import os
import sys
from collections import Counter
from pathlib import Path

import pytest

sys.path.insert(0, str(Path(__file__).parent))

from bench_common import (  # noqa: E402
    CHROMOSOME_LENGTH,
    CHROMOSOMES,
    DGE_READS,
    RESEQ_READS,
    RESULTS_DIR,
    SCALE,
    save_report,
)

from repro.core import GenomicsWarehouse
from repro.genomics.simulate import (
    annotate_genes,
    generate_reference,
    simulate_dge_lane,
    simulate_resequencing_lane,
)



@pytest.fixture(scope="session")
def reference():
    return generate_reference(
        n_chromosomes=CHROMOSOMES,
        chromosome_length=CHROMOSOME_LENGTH,
        seed=1,
    )


@pytest.fixture(scope="session")
def genes(reference):
    return annotate_genes(
        reference, n_genes=120, gene_length=(400, 1500), seed=2
    )


@pytest.fixture(scope="session")
def dge_reads(reference, genes):
    return list(simulate_dge_lane(reference, genes, DGE_READS, seed=3))


@pytest.fixture(scope="session")
def reseq_reads(reference):
    return list(simulate_resequencing_lane(reference, RESEQ_READS, seed=4))


@pytest.fixture(scope="session")
def ranked_tags(dge_reads):
    counts = Counter(r.sequence for r in dge_reads if "N" not in r.sequence)
    return [
        (rank, count, seq)
        for rank, (seq, count) in enumerate(
            sorted(counts.items(), key=lambda kv: (-kv[1], kv[0])), start=1
        )
    ]


@pytest.fixture(scope="session")
def dge_warehouse(reference, genes, dge_reads):
    """A loaded DGE warehouse: reads imported, tags binned and aligned."""
    wh = GenomicsWarehouse()
    wh.load_reference(reference)
    wh.load_genes(genes)
    wh.register_experiment(1, "dge bench", "dge")
    wh.register_sample_group(1, 1, "grp")
    wh.register_sample(1, 1, 1, "smp")
    wh.import_lane_relational(1, 1, 1, dge_reads)
    wh.bin_unique_tags(1, 1, 1)
    wh.align_tags(1, 1, 1)
    # warm the buffer pool, as the paper's measurements do
    list(wh.db.table("Read").scan())
    list(wh.db.table("Alignment").scan())
    yield wh
    wh.close()


@pytest.fixture(scope="session")
def reseq_read_ids(reseq_reads):
    """Read name -> r_id under import_lane_relational's id assignment."""
    return {
        record.name: r_id
        for r_id, record in enumerate(reseq_reads, start=1)
    }


@pytest.fixture(scope="session")
def reseq_warehouse(reference, reseq_reads, reseq_alignments, reseq_read_ids):
    """A loaded re-sequencing warehouse (position-clustered alignments).

    Alignments are computed once (``reseq_alignments``) and bulk-loaded,
    so the several warehouses in this suite share the aligner work.
    """
    wh = GenomicsWarehouse(alignment_clustering="position")
    wh.load_reference(reference)
    wh.register_experiment(1, "1000g bench", "resequencing")
    wh.register_sample_group(1, 1, "grp")
    wh.register_sample(1, 1, 1, "smp")
    wh.import_lane_relational(1, 1, 1, reseq_reads)
    wh.load_alignments(1, 1, 1, reseq_alignments, reseq_read_ids)
    list(wh.db.table("Read").scan())
    list(wh.db.table("Alignment").scan())
    yield wh
    wh.close()


@pytest.fixture(scope="session")
def reseq_alignments(reference, reseq_reads):
    """Raw alignments for storage measurements (shared, computed once)."""
    from repro.genomics.aligner import ShortReadAligner

    aligner = ShortReadAligner(reference)
    return [
        hit for _read, hit in aligner.align_all(reseq_reads) if hit is not None
    ]


@pytest.fixture(scope="session")
def dge_alignments(reference, ranked_tags):
    """Tag alignments for the DGE storage scenario."""
    from repro.genomics.aligner import ShortReadAligner
    from repro.genomics.fastq import FastqRecord

    aligner = ShortReadAligner(reference)
    hits = []
    for rank, _count, seq in ranked_tags:
        record = FastqRecord(f"tag_{rank}", seq, "I" * len(seq))
        hit = aligner.align(record)
        if hit is not None:
            hits.append(hit)
    return hits
