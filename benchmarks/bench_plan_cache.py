"""Experiment: plan cache effectiveness on hot parameterized traffic.

The paper's query workloads are dominated by repeated, parameterized
statement shapes — per-probe annotation lookups that join the probe
catalog through gene, family, and organism dimension tables, plus
point and tag seeks — exactly the traffic SQL Server amortises through
its procedure cache. This benchmark measures what our plan cache buys
on such a workload:

- **cache off** — every execution pays parse → optimize → lower;
- **cold** — cache armed, first execution of each shape (all misses);
- **warm** — cache armed, steady state: the raw-text hit path masks
  the statement into its shape, rebinds the literals positionally,
  and re-executes the compiled plan without parsing at all.

A second segment replays a skewed-parameter workload against a cached
plan to count sniffing-guard recompiles — the adaptive half of the
cache.

Report: ``benchmarks/results/BENCH_plan_cache.json`` with cold/warm/off
wall times, warm-vs-off speedup, hit ratio, and recompile count. At
full scale the bench asserts the 2x warm speedup and 0.9 hit-ratio
bars; CI smoke re-checks a relaxed floor from the JSON.
"""

import time

from bench_common import SCALE, save_bench_json
from repro.engine import Database

ROWS = max(int(20_000 * SCALE), 500)
#: executions per statement shape per pass
EXECUTIONS = max(int(200 * SCALE), 40)
#: interleaved measurement passes (best-of to shed CI noise)
PASSES = 2

#: hot statement shapes: selective, parameterized — the traffic a plan
#: cache exists for. The joins are the annotation lookups the paper's
#: workloads repeat per probe: planning them (join order, access-method
#: choice, cost annotation) dwarfs executing them, which is exactly
#: where compile amortisation pays.
_SHAPES = [
    lambda i: f"SELECT g_id, hits FROM probe WHERE p_id = {i % ROWS}",
    lambda i: f"SELECT p_id FROM probe WHERE tag = 'tag{i % 199}'",
    lambda i: (
        "SELECT p.p_id, g.name, f.fname FROM probe p "
        "JOIN gene g ON p.g_id = g.g_id "
        "JOIN fam f ON g.f_id = f.f_id "
        f"WHERE p.p_id = {(i * 37) % ROWS}"
    ),
    lambda i: (
        "SELECT p.p_id, g.name, f.fname, o.oname FROM probe p "
        "JOIN gene g ON p.g_id = g.g_id "
        "JOIN fam f ON g.f_id = f.f_id "
        "JOIN org o ON f.o_id = o.o_id "
        f"WHERE p.p_id = {(i * 61) % ROWS}"
    ),
    lambda i: (
        "SELECT COUNT(*), SUM(p.hits) FROM probe p "
        "JOIN gene g ON p.g_id = g.g_id "
        f"WHERE p.p_id = {(i * 17) % ROWS} AND g.f_id >= 0"
    ),
]


def _build(db: Database) -> None:
    db.execute("CREATE TABLE org (o_id INT PRIMARY KEY, oname VARCHAR(16))")
    db.execute("INSERT INTO org VALUES (0, 'human'), (1, 'mouse'), (2, 'rat')")
    db.execute(
        "CREATE TABLE fam (f_id INT PRIMARY KEY, fname VARCHAR(16), o_id INT)"
    )
    db.execute(
        "INSERT INTO fam VALUES "
        + ", ".join(f"({i}, 'f{i}', {i % 3})" for i in range(5))
    )
    db.execute(
        "CREATE TABLE gene (g_id INT PRIMARY KEY, name VARCHAR(16), f_id INT)"
    )
    db.execute(
        "INSERT INTO gene VALUES "
        + ", ".join(f"({i}, 'g{i}', {i % 5})" for i in range(23))
    )
    db.execute(
        "CREATE TABLE probe (p_id INT PRIMARY KEY, g_id INT, "
        "tag VARCHAR(16), hits INT)"
    )
    chunk = 1000
    for base in range(0, ROWS, chunk):
        db.execute(
            "INSERT INTO probe VALUES "
            + ", ".join(
                f"({i}, {i % 23}, 'tag{i % 199}', {i * 7 % 101})"
                for i in range(base, min(base + chunk, ROWS))
            )
        )
    db.execute("CREATE INDEX ix_tag ON probe (tag)")
    for table in ("org", "fam", "gene", "probe"):
        db.execute(f"UPDATE STATISTICS {table}")


def _run_pass(db: Database) -> float:
    start = time.perf_counter()
    for shape in _SHAPES:
        for i in range(EXECUTIONS):
            db.query(shape(i))
    return time.perf_counter() - start


def test_plan_cache_speedup():
    with Database() as cached, Database() as uncached:
        _build(cached)
        _build(uncached)
        uncached.execute("SET PLAN_CACHE OFF")

        # cold: first execution of every shape compiles + caches
        start = time.perf_counter()
        for shape in _SHAPES:
            cached.query(shape(0))
        cold_s = time.perf_counter() - start

        # interleave warm and off passes; best-of-N sheds runner noise
        warm_s = min(_run_pass(cached) for _ in range(PASSES))
        off_s = min(_run_pass(uncached) for _ in range(PASSES))

        stats = cached.plan_cache.stats_dict()
        executed = stats["hits"] + stats["misses"]
        hit_ratio = stats["hits"] / executed if executed else 0.0
        speedup = off_s / warm_s if warm_s else 0.0

        # adaptive segment: skewed parameters against a cached plan
        # must trip the sniffing guard into recompiles
        cached.execute(
            "CREATE TABLE sk (id INT PRIMARY KEY, g VARCHAR(8))"
        )
        values = [f"({i}, 'hot')" for i in range(400)]
        values += [f"({400 + i}, 'rare')" for i in range(5)]
        cached.execute("INSERT INTO sk VALUES " + ", ".join(values))
        cached.execute("CREATE INDEX ix_g ON sk (g)")
        cached.execute("UPDATE STATISTICS sk")
        cached.query("SELECT id FROM sk WHERE g = 'rare'")
        cached.query("SELECT id FROM sk WHERE g = 'hot'")
        recompiles = cached.plan_cache.stats_dict()["recompiles"]

        save_bench_json(
            "plan_cache",
            wall_time=warm_s,
            rows=ROWS,
            counters={
                "hits": stats["hits"],
                "misses": stats["misses"],
                "entries": stats["entries"],
                "recompiles": recompiles,
            },
            extra={
                "statements": len(_SHAPES),
                "executions_per_statement": EXECUTIONS,
                "cache_off_s": round(off_s, 6),
                "cold_compile_s": round(cold_s, 6),
                "warm_s": round(warm_s, 6),
                "speedup_warm_vs_off": round(speedup, 3),
                "hit_ratio": round(hit_ratio, 4),
                "throughput_warm_stmt_s": round(
                    len(_SHAPES) * EXECUTIONS / warm_s, 1
                ),
                "throughput_off_stmt_s": round(
                    len(_SHAPES) * EXECUTIONS / off_s, 1
                ),
            },
        )

        print(
            f"\nplan cache: warm {warm_s:.3f}s vs off {off_s:.3f}s "
            f"({speedup:.2f}x), hit ratio {hit_ratio:.3f}, "
            f"{recompiles} sniffing recompile(s)"
        )

        assert hit_ratio >= 0.9, f"hit ratio {hit_ratio:.3f} < 0.9"
        assert recompiles >= 1, "skewed parameters tripped no recompile"
        if SCALE >= 1.0:
            # the acceptance bar: steady-state cached execution must at
            # least double throughput over per-execution compilation
            assert speedup >= 2.0, f"warm speedup {speedup:.2f}x < 2x"
