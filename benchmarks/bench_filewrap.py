"""Experiment S52 — Section 5.2: file wrapping performance.

``SELECT COUNT(*)`` over a FASTA short-read file through five access
paths, reproducing the paper's in-text table::

    Command line program (C#)                 ~ 5 secs
    T-SQL Stored Procedure              several minutes
    CLR-based Stored Procedure with StreamReader  21 secs
    CLR-based Stored Procedure with Chunking       7 secs
    CLR-based TVF with Chunking                   14 secs

Report: ``benchmarks/results/filewrap_s52.txt``.

Expected shape: interpreted procedure ≫ line-at-a-time procedure >
chunked TVF > chunked procedure ≈ command-line program. Absolute numbers
differ (the paper's file had 5M lines, ours is scaled; both the engine
and the "command line program" here are Python), but the ordering is
architectural and must hold.
"""

import time
import uuid

import pytest

from bench_common import SCALE, save_bench_json, save_report
from repro.core.filewrap import (
    count_records_chunked,
    count_records_command_line,
    count_records_interpreted,
    count_records_streamreader,
    count_records_tvf,
)
from repro.core.schemas import create_filestream_schema
from repro.core.wrappers import register_extensions
from repro.engine import Database
from repro.genomics.fasta import FastaRecord, write_fasta

#: FASTA records in the scanned file (2 lines each)
N_RECORDS = int(60_000 * SCALE)


@pytest.fixture(scope="module")
def setup(tmp_path_factory, reseq_reads):
    tmp = tmp_path_factory.mktemp("filewrap")
    pool = reseq_reads
    records = [
        FastaRecord(f"read_{i}", pool[i % len(pool)].sequence)
        for i in range(N_RECORDS)
    ]
    fasta_path = tmp / "lane.fasta"
    write_fasta(records, fasta_path)
    db = Database(data_dir=tmp / "db")
    register_extensions(db)
    create_filestream_schema(db)
    db.bulk_insert_filestream(
        "ShortReadFiles",
        {"guid": uuid.uuid4(), "sample": 855, "lane": 1, "fmt": "FastA"},
        "reads",
        fasta_path,
    )
    guid = db.query("SELECT reads FROM ShortReadFiles")[0][0]
    yield db, fasta_path, guid
    db.close()


class TestVariants:
    def test_bench_command_line(self, benchmark, setup):
        _db, path, _guid = setup
        count = benchmark.pedantic(
            count_records_command_line, args=(path,), rounds=3, iterations=1
        )
        assert count == N_RECORDS

    def test_bench_interpreted_procedure(self, benchmark, setup):
        db, _path, guid = setup
        count = benchmark.pedantic(
            count_records_interpreted, args=(db, guid), rounds=1, iterations=1
        )
        assert count == N_RECORDS

    def test_bench_streamreader_procedure(self, benchmark, setup):
        db, _path, guid = setup
        count = benchmark.pedantic(
            count_records_streamreader, args=(db, guid), rounds=3, iterations=1
        )
        assert count == N_RECORDS

    def test_bench_chunked_procedure(self, benchmark, setup):
        db, _path, guid = setup
        count = benchmark.pedantic(
            count_records_chunked, args=(db, guid), rounds=3, iterations=1
        )
        assert count == N_RECORDS

    def test_bench_chunked_tvf(self, benchmark, setup):
        db, _path, _guid = setup
        count = benchmark.pedantic(
            count_records_tvf, args=(db, 855, 1, "FastA"), rounds=3, iterations=1
        )
        assert count == N_RECORDS


def test_s52_report(benchmark, setup):
    """Measure all five variants back to back and print the §5.2 table."""
    db, path, guid = setup

    def run_all():
        timings = {}
        start = time.perf_counter()
        count_records_command_line(path)
        timings["Command line program"] = time.perf_counter() - start
        start = time.perf_counter()
        count_records_interpreted(db, guid)
        timings["T-SQL-style interpreted procedure"] = (
            time.perf_counter() - start
        )
        start = time.perf_counter()
        count_records_streamreader(db, guid)
        timings["Stored procedure, line reader"] = time.perf_counter() - start
        start = time.perf_counter()
        count_records_chunked(db, guid)
        timings["Stored procedure, chunking"] = time.perf_counter() - start
        start = time.perf_counter()
        count_records_tvf(db, 855, 1, "FastA")
        timings["TVF, chunking"] = time.perf_counter() - start
        return timings

    timings = benchmark.pedantic(run_all, rounds=1, iterations=1)
    baseline = timings["Stored procedure, chunking"]
    lines = [
        "Section 5.2 (reproduced): COUNT(*) over a "
        f"{N_RECORDS * 2:,}-line FASTA short-read file",
        "=" * 74,
        f"{'Access path':<40}{'seconds':>12}{'vs chunked proc':>18}",
        "-" * 74,
    ]
    for name in (
        "Command line program",
        "T-SQL-style interpreted procedure",
        "Stored procedure, line reader",
        "Stored procedure, chunking",
        "TVF, chunking",
    ):
        seconds = timings[name]
        lines.append(f"{name:<40}{seconds:>12.3f}{seconds / baseline:>17.1f}x")
    lines.append("-" * 74)
    lines.append(
        "Paper:   ~5s | several minutes | 21s | 7s | 14s  (5,028,052 lines)"
    )
    save_report("filewrap_s52.txt", "\n".join(lines))
    fs_io = db.filestream.io
    save_bench_json(
        "filewrap_s52",
        wall_time=timings["Stored procedure, chunking"],
        rows=N_RECORDS,
        counters={
            "filestream_chunk_reads": fs_io.get("chunk_reads", 0),
            "filestream_bytes_read": fs_io.get("bytes_read", 0),
            "filestream_prefetch_hits": fs_io.get("prefetch_hits", 0),
            "filestream_prefetch_misses": fs_io.get("prefetch_misses", 0),
        },
        extra={
            "timings_s": {k: round(v, 6) for k, v in timings.items()},
        },
    )

    # the architectural ordering must hold
    assert timings["T-SQL-style interpreted procedure"] > timings[
        "Stored procedure, line reader"
    ]
    assert timings["Stored procedure, line reader"] > timings[
        "Stored procedure, chunking"
    ]
    assert timings["TVF, chunking"] > timings["Stored procedure, chunking"]
