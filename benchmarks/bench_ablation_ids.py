"""Ablation A1 — why normalization wins: textual composite IDs vs
synthetic integer keys (the design choice behind Sections 3.2 / 5.1).

The paper attributes the 1:1 import's blow-up to "materialized composite
primary keys": the read name repeats machine + run + lane + tile + x + y
as text in every table that references a read. This ablation stores the
same alignments with (a) the textual read name as the key and (b) a
synthetic BIGINT key, sweeping the read-name length, and reports the
storage ratio.

Report: ``benchmarks/results/ablation_ids.txt``.
"""

import pytest

from bench_common import save_bench_json, save_report
from repro.engine import Database

N_ROWS = 20_000


def _textual_schema(db, name_length):
    db.execute(
        f"""
        CREATE TABLE AlnText (
            read_name VARCHAR({name_length + 10}),
            ref_name  VARCHAR(50),
            a_pos     INT,
            a_mapq    INT,
            PRIMARY KEY (read_name)
        )
        """
    )


def _synthetic_schema(db):
    db.execute(
        """
        CREATE TABLE AlnInt (
            a_r_id BIGINT,
            a_rs_id INT,
            a_pos  INT,
            a_mapq INT,
            PRIMARY KEY (a_r_id)
        )
        """
    )


def _measure(name_length):
    """Bytes per alignment row under each keying, at one name length."""
    machine = "IL4_855"
    with Database() as db:
        _textual_schema(db, name_length)
        table = db.table("AlnText")
        for i in range(N_ROWS):
            # unique counter first so truncation never collides, then the
            # composite machine:run:lane:tile:x:y filler the real names carry
            name = f"{i:08d}:{machine}:1:{i % 300}:{i % 2048}:{i % 1777}"
            name = (name + "x" * name_length)[:name_length]
            table.insert((name, "chr1", i, 60))
        table.finish_bulk_load()
        textual = table.stored_bytes()
    with Database() as db:
        _synthetic_schema(db)
        table = db.table("AlnInt")
        for i in range(N_ROWS):
            table.insert((i, 1, i, 60))
        table.finish_bulk_load()
        synthetic = table.stored_bytes()
    return textual, synthetic


def test_ablation_ids_report(benchmark):
    def sweep():
        return {
            length: _measure(length) for length in (16, 24, 32, 48, 64)
        }

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    lines = [
        f"Ablation A1: textual composite keys vs synthetic integer keys "
        f"({N_ROWS:,} alignment rows)",
        "=" * 72,
        f"{'name length':>12}{'textual key':>16}{'synthetic key':>16}{'ratio':>10}",
        "-" * 72,
    ]
    for length, (textual, synthetic) in sorted(results.items()):
        lines.append(
            f"{length:>12}{textual:>15,}B{synthetic:>15,}B"
            f"{textual / synthetic:>9.2f}x"
        )
    lines.append("-" * 72)
    lines.append(
        "Longer materialized names inflate every referencing row; the\n"
        "synthetic key is constant-size — the normalization payoff of §5.1."
    )
    save_report("ablation_ids.txt", "\n".join(lines))
    save_bench_json(
        "ablation_ids",
        rows=N_ROWS,
        extra={
            "sweep": {
                str(length): {
                    "textual_bytes": textual,
                    "synthetic_bytes": synthetic,
                    "ratio": round(textual / synthetic, 3),
                }
                for length, (textual, synthetic) in sorted(results.items())
            },
        },
    )

    for length, (textual, synthetic) in results.items():
        assert textual > synthetic
    # the ratio must grow with the name length
    ratios = [
        results[length][0] / results[length][1]
        for length in sorted(results)
    ]
    assert ratios[-1] > ratios[0]
