"""Shared helpers for the benchmark suite (importable, unlike conftest)."""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Any, Dict, Optional

SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "1.0"))

#: workload sizes at scale 1.0
DGE_READS = int(80_000 * SCALE)
RESEQ_READS = int(50_000 * SCALE)
CHROMOSOMES = 3
CHROMOSOME_LENGTH = int(60_000 * max(SCALE, 1.0))

RESULTS_DIR = Path(__file__).parent / "results"


def save_report(name: str, text: str) -> Path:
    """Persist a paper-artifact report and echo it to stdout."""
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / name
    path.write_text(text + "\n")
    print(f"\n{text}\n[saved to {path}]")
    return path


def save_bench_json(
    name: str,
    wall_time: Optional[float] = None,
    rows: Optional[int] = None,
    counters: Optional[Dict[str, Any]] = None,
    extra: Optional[Dict[str, Any]] = None,
) -> Path:
    """Persist one benchmark's machine-readable result as
    ``BENCH_<name>.json`` so CI can archive the perf trajectory.

    ``counters`` takes key engine/IO counters (logical reads, bytes,
    exchange timings); ``extra`` takes benchmark-specific fields.
    """
    RESULTS_DIR.mkdir(exist_ok=True)
    payload: Dict[str, Any] = {"name": name, "scale": SCALE}
    if wall_time is not None:
        payload["wall_time_s"] = round(float(wall_time), 6)
    if rows is not None:
        payload["rows"] = int(rows)
    if counters:
        payload["counters"] = dict(counters)
    if extra:
        payload.update(extra)
    path = RESULTS_DIR / f"BENCH_{name}.json"
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return path
