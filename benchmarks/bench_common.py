"""Shared helpers for the benchmark suite (importable, unlike conftest)."""

from __future__ import annotations

import os
from pathlib import Path

SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "1.0"))

#: workload sizes at scale 1.0
DGE_READS = int(80_000 * SCALE)
RESEQ_READS = int(50_000 * SCALE)
CHROMOSOMES = 3
CHROMOSOME_LENGTH = int(60_000 * max(SCALE, 1.0))

RESULTS_DIR = Path(__file__).parent / "results"


def save_report(name: str, text: str) -> Path:
    """Persist a paper-artifact report and echo it to stdout."""
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / name
    path.write_text(text + "\n")
    print(f"\n{text}\n[saved to {path}]")
    return path
