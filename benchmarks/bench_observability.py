"""Experiment OBS — what does always-on observability cost?

The Query Store, the statement tracer, and the wait-stats rollup are on
by default, the way SQL Server ships them: every statement is
normalised, interned, and span-traced, including across the process
boundary into parallel workers. This bench runs the bench_parallel
scan-aggregate workload twice — instrumentation on (the shipping
default) and instrumentation off (``db.tracer.enabled = False``,
``db.query_store.enabled = False``) — and reports the relative
overhead, which must stay **under 5 %** for the layer to deserve its
on-by-default switch.

Best-of-N minimums on both sides cancel the usual CI noise: the
instrumented cost per statement is a fixed few hundred microseconds
(one normalisation-cache hit, one span-tree append, one runtime-stats
row update), so the percentage shrinks as the workload grows.

Reports:
- ``benchmarks/results/observability.txt`` — on/off wall table;
- ``benchmarks/results/BENCH_observability.json`` — machine-readable
  (CI gates on ``overhead_pct``);
- ``benchmarks/results/trace_sample.json`` — a Chrome trace-event
  export of one dop-2 statement (load it in ``chrome://tracing``).
"""

from __future__ import annotations

import json
import time

import pytest

from bench_common import RESULTS_DIR, SCALE, save_bench_json, save_report
from repro.engine.database import Database

#: rows in the observed workload at scale 1.0; floored so the fixed
#: per-statement cost is measured against a non-trivial wall even at
#: smoke scale (the overhead ratio is meaningless on a sub-ms workload)
OBS_ROWS = max(int(120_000 * SCALE), 40_000)

#: statements per timed pass: a serial aggregate, a filtered scan, and
#: a dop-2 exchange — the bench_parallel shapes the tracer instruments
#: most heavily
WORKLOAD = (
    "SELECT grp, COUNT(*), SUM(amount) FROM readings GROUP BY grp "
    "OPTION (MAXDOP 1)",
    "SELECT COUNT(*) FROM readings WHERE amount < 25",
    "SELECT grp, COUNT(*), SUM(amount), MAX(amount) FROM readings "
    "GROUP BY grp OPTION (MAXDOP 2)",
)

REPEATS = 9


@pytest.fixture(scope="module")
def obs_db():
    db = Database()
    db.execute(
        "CREATE TABLE readings (r_id INT PRIMARY KEY, grp INT, amount INT)"
    )
    table = db.table("readings")
    for i in range(max(OBS_ROWS, 200)):
        table.insert((i, i % 13, (i * 7) % 50))
    table.finish_bulk_load()
    db.execute("UPDATE STATISTICS readings")
    # spawn the worker pool and warm every code path outside the timing
    for sql in WORKLOAD:
        db.query(sql)
    yield db
    db.close()


def _set_instrumentation(db, enabled):
    db.tracer.enabled = enabled
    db.query_store.enabled = enabled


def _one_pass(db):
    start = time.perf_counter()
    rows = None
    for sql in WORKLOAD:
        rows = db.query(sql)
    return rows, time.perf_counter() - start


def _time_interleaved(db, repeats=REPEATS):
    """Best-of-N wall for the workload, instrumentation on vs off.

    The two passes alternate inside one repeat loop so slow machine
    drift (CI neighbours, thermal throttling, worker-pool scheduling
    jitter on a single core) hits both sides equally instead of biasing
    whichever side ran last."""
    wall_on = wall_off = float("inf")
    rows_on = rows_off = None
    for _ in range(repeats):
        _set_instrumentation(db, True)
        rows_on, elapsed = _one_pass(db)
        wall_on = min(wall_on, elapsed)
        _set_instrumentation(db, False)
        rows_off, elapsed = _one_pass(db)
        wall_off = min(wall_off, elapsed)
    _set_instrumentation(db, True)
    return rows_on, wall_on, rows_off, wall_off


def test_obs_report(obs_db):
    rows_on, wall_on, rows_off, wall_off = _time_interleaved(obs_db)

    # export one dop-2 statement's trace while instrumentation is live
    _set_instrumentation(obs_db, True)
    obs_db.query(WORKLOAD[-1])
    sample_path = RESULTS_DIR / "trace_sample.json"
    RESULTS_DIR.mkdir(exist_ok=True)
    obs_db.write_trace(sample_path, last_only=True)
    sample = json.loads(sample_path.read_text())
    assert any(e["ph"] == "X" for e in sample["traceEvents"])

    # observability is read-only: byte-identical results either way
    assert repr(rows_on) == repr(rows_off)

    overhead_pct = (
        (wall_on - wall_off) / wall_off * 100.0 if wall_off > 0 else 0.0
    )

    statements = len(WORKLOAD)
    per_stmt_us = (
        max(wall_on - wall_off, 0.0) / statements * 1e6
    )
    waits = obs_db.tracer.wait_stats.rows()
    store_queries = len(obs_db.query_store.queries())

    lines = [
        "Observability overhead: query store + tracer + wait stats",
        "=" * 64,
        f"{'Pass':<28}{'best-of-%d wall s' % REPEATS:>20}",
        "-" * 64,
        f"{'instrumentation ON':<28}{wall_on:>20.4f}",
        f"{'instrumentation OFF':<28}{wall_off:>20.4f}",
        "-" * 64,
        f"overhead: {overhead_pct:+.2f}%  "
        f"(~{per_stmt_us:.0f} us per statement, "
        f"{store_queries} queries interned, "
        f"{len(waits)} wait types observed)",
    ]
    save_report("observability.txt", "\n".join(lines))

    save_bench_json(
        "observability",
        wall_time=wall_on,
        rows=obs_db.scalar("SELECT COUNT(*) FROM readings"),
        extra={
            "wall_on_s": round(wall_on, 6),
            "wall_off_s": round(wall_off, 6),
            "overhead_pct": round(overhead_pct, 3),
            "per_statement_us": round(per_stmt_us, 1),
            "statements_per_pass": statements,
            "repeats": REPEATS,
            "query_store_queries": store_queries,
            "wait_types": [w[0] for w in waits],
        },
    )

    # the on-by-default bar: noise-cancelled minimums must stay close
    assert overhead_pct < 5.0, (
        f"instrumentation overhead {overhead_pct:.2f}% >= 5%"
    )
