"""Ablation A2 — ReadChunk size (the design knob of Section 4.1).

The paper's wrapper reads the FileStream "in larger chunks of data";
this ablation sweeps the chunk size from 4 KiB to 4 MiB and measures the
TVF scan rate, showing why "larger chunks" matter and where the returns
flatten out.

Report: ``benchmarks/results/ablation_chunks.txt``.
"""

import time
import uuid

import pytest

from bench_common import SCALE, save_bench_json, save_report
from repro.core.wrappers import ChunkedBlobReader, parse_fastq_entry
from repro.engine import Database
from repro.genomics.fastq import fastq_bytes

N_READS = int(40_000 * SCALE)

CHUNK_SIZES = (4 << 10, 16 << 10, 64 << 10, 256 << 10, 1 << 20, 4 << 20)


@pytest.fixture(scope="module")
def blob(tmp_path_factory, dge_reads):
    db = Database(data_dir=tmp_path_factory.mktemp("chunks"))
    payload = fastq_bytes(dge_reads[:N_READS])
    guid = db.filestream.create(payload)
    yield db, guid, len(payload)
    db.close()


def scan_with_chunk_size(db, guid, chunk_size):
    reader = ChunkedBlobReader(db.filestream, guid, chunk_size=chunk_size)
    count = 0
    for _entry in reader.entries(parse_fastq_entry):
        count += 1
    return count, reader.chunks_read


@pytest.mark.parametrize("chunk_size", [4 << 10, 256 << 10, 4 << 20])
def test_bench_chunked_scan(benchmark, blob, chunk_size):
    db, guid, _size = blob
    count, _chunks = benchmark.pedantic(
        scan_with_chunk_size,
        args=(db, guid, chunk_size),
        rounds=3,
        iterations=1,
    )
    assert count == N_READS


def test_ablation_chunks_report(benchmark, blob):
    db, guid, payload_size = blob

    def sweep():
        results = {}
        for chunk_size in CHUNK_SIZES:
            start = time.perf_counter()
            count, chunks = scan_with_chunk_size(db, guid, chunk_size)
            elapsed = time.perf_counter() - start
            assert count == N_READS
            results[chunk_size] = (elapsed, chunks)
        return results

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    lines = [
        f"Ablation A2: TVF ReadChunk size sweep "
        f"({N_READS:,} FASTQ records, {payload_size / 1e6:.1f} MB blob)",
        "=" * 72,
        f"{'chunk size':>12}{'seconds':>12}{'MB/s':>10}{'chunks':>10}",
        "-" * 72,
    ]
    for chunk_size in CHUNK_SIZES:
        elapsed, chunks = results[chunk_size]
        rate = payload_size / 1e6 / elapsed
        label = (
            f"{chunk_size >> 10}K" if chunk_size < (1 << 20)
            else f"{chunk_size >> 20}M"
        )
        lines.append(f"{label:>12}{elapsed:>12.3f}{rate:>10.1f}{chunks:>10}")
    lines.append("-" * 72)
    lines.append(
        "Tiny chunks pay per-ReadChunk overhead and constant re-paging of\n"
        "split entries; past ~256K the scan is parse-bound and flat —\n"
        "the paper's 'scan through the file in larger chunks' design point."
    )
    save_report("ablation_chunks.txt", "\n".join(lines))
    save_bench_json(
        "ablation_chunks",
        wall_time=results[256 << 10][0],
        rows=N_READS,
        counters={
            "payload_bytes": payload_size,
            "filestream_chunk_reads": db.filestream.io.get("chunk_reads", 0),
        },
        extra={
            "sweep": {
                str(chunk_size): {
                    "elapsed_s": round(elapsed, 6),
                    "chunks": chunks,
                }
                for chunk_size, (elapsed, chunks) in results.items()
            },
        },
    )

    smallest = results[CHUNK_SIZES[0]][0]
    sweet_spot = results[256 << 10][0]
    assert sweet_spot <= smallest * 1.05
