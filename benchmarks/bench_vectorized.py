"""Experiment VEC — vectorized batch-mode execution vs the row-mode
Volcano interpreter on the canonical scan-filter-aggregate pipeline.

The engine's row-mode interpreter pays a Python generator handshake and
a closure call per row per operator. Batch mode amortises that: scans
emit page-aligned batches, filters evaluate a batch-compiled predicate
over whole batches, and aggregates accumulate column-wise. This bench
times the same query in both modes (``db.execution_mode``), checks the
results are identical, and reports the speedup.

Reports:
- ``benchmarks/results/vectorized.txt`` — the mode comparison;
- ``benchmarks/results/BENCH_vectorized.json`` — machine-readable.
"""

from __future__ import annotations

import time

import pytest

from bench_common import SCALE, save_bench_json, save_report
from repro.engine.database import Database

#: rows in the scan-filter-aggregate workload at scale 1.0
VEC_ROWS = int(120_000 * SCALE)

# MAXDOP 1 keeps the exchange operator out of the plan: the comparison
# is row vs batch execution of the same serial pipeline, not the
# parallelism simulation
SQL = (
    "SELECT grp, COUNT(*), SUM(amount), AVG(price) FROM measurements "
    "WHERE amount > 12 GROUP BY grp OPTION (MAXDOP 1)"
)


@pytest.fixture(scope="module")
def vec_db():
    db = Database()
    db.execute(
        "CREATE TABLE measurements (m_id INT PRIMARY KEY, grp INT, "
        "amount INT, price FLOAT)"
    )
    table = db.table("measurements")
    for i in range(max(VEC_ROWS, 100)):
        table.insert((i, i % 23, (i * 7) % 50, float(i % 13) * 2.5))
    table.finish_bulk_load()
    db.execute("UPDATE STATISTICS measurements")
    yield db
    db.close()


def _time_mode(db, mode, repeats=5):
    """Best-of-N wall time for SQL in one execution mode."""
    db.execution_mode = mode
    best = float("inf")
    rows = None
    for _ in range(repeats):
        start = time.perf_counter()
        rows = db.query(SQL)
        best = min(best, time.perf_counter() - start)
    db.execution_mode = "auto"
    return rows, best


class TestVectorized:
    def test_bench_row_mode(self, benchmark, vec_db):
        vec_db.execution_mode = "row"
        try:
            rows = benchmark.pedantic(
                vec_db.query, args=(SQL,), rounds=3, iterations=1
            )
        finally:
            vec_db.execution_mode = "auto"
        assert rows

    def test_bench_batch_mode(self, benchmark, vec_db):
        vec_db.execution_mode = "auto"
        rows = benchmark.pedantic(
            vec_db.query, args=(SQL,), rounds=3, iterations=1
        )
        assert rows


def test_vec_report(vec_db):
    # warm both page caches and code paths before timing
    _time_mode(vec_db, "row", repeats=1)
    _time_mode(vec_db, "auto", repeats=1)

    row_rows, row_time = _time_mode(vec_db, "row")
    batch_rows, batch_time = _time_mode(vec_db, "auto")

    # batch mode must be a pure execution-strategy change
    assert batch_rows == row_rows
    assert repr(batch_rows) == repr(row_rows)

    plan = vec_db.explain(SQL)
    assert "batch mode" in plan

    speedup = row_time / batch_time if batch_time > 0 else 1.0
    n_rows = vec_db.scalar("SELECT COUNT(*) FROM measurements")

    lines = [
        "Vectorized execution: scan-filter-aggregate, "
        f"{n_rows:,} rows, {len(batch_rows)} groups",
        "=" * 72,
        f"{'Mode':<46}{'seconds':>12}",
        "-" * 72,
        f"{'row mode (Volcano interpreter)':<46}{row_time:>12.4f}",
        f"{'batch mode (vectorized)':<46}{batch_time:>12.4f}",
        "-" * 72,
        f"{'speedup':<46}{speedup:>11.2f}x",
    ]
    save_report("vectorized.txt", "\n".join(lines))
    save_bench_json(
        "vectorized",
        wall_time=batch_time,
        rows=n_rows,
        extra={
            "query": SQL,
            "row_mode_s": round(row_time, 6),
            "batch_mode_s": round(batch_time, 6),
            "speedup": round(speedup, 3),
            "groups": len(batch_rows),
        },
    )

    # generous floor: timing noise aside, batch mode must never be a
    # regression (the CI job asserts the same from the JSON artifact)
    assert speedup >= 0.9
