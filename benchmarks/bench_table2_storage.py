"""Experiment T2 — Table 2: storage efficiency, 1000 Genomes re-sequencing.

Regenerates the paper's Table 2 at simulator scale: one re-sequencing
lane (mostly unique reads against a multi-chromosome reference), stored
under every physical design.

Report: ``benchmarks/results/table2_storage.txt``.

Expected shape (paper Section 5.1.2): FileStream == Files; the 1:1
import is larger than the original; normalizing the alignments saves
~40 %+ ("for the alignments, we can save 40% space this way"); page
compression is much less effective than on the DGE data because the
reads are unique ("the common-prefix- and dictionary-based compression
algorithms ... do not perform that well"); the bit-packed DNA UDT
recovers the sequence-payload savings the paper projects.
"""

import pytest

from bench_common import save_bench_json, save_report
from repro.core.storage_report import (
    ScenarioData,
    format_engine_report,
    format_table,
    measure_storage,
)


@pytest.fixture(scope="module")
def scenario(reseq_reads, reseq_alignments):
    return ScenarioData(
        kind="resequencing",
        reads=reseq_reads,
        alignments=reseq_alignments,
    )


def test_table2_report(benchmark, scenario, tmp_path_factory):
    engine_detail = []
    storage_table = benchmark.pedantic(
        measure_storage,
        args=(scenario,),
        kwargs={
            "workdir": tmp_path_factory.mktemp("table2"),
            "engine_detail": engine_detail,
        },
        rounds=1,
        iterations=1,
    )
    text = format_table(
        storage_table,
        "Table 2 (reproduced, simulator scale): Storage Efficiency "
        "- 1000 Genomes Re-sequencing",
    )
    text += "\n" + format_engine_report(engine_detail)
    save_report("table2_storage.txt", text)
    save_bench_json(
        "table2_storage",
        counters={
            section + "_" + design: size
            for section, designs in storage_table.items()
            for design, size in designs.items()
        },
    )

    reads = storage_table["short_reads"]
    alignments = storage_table["alignments"]
    # paper claims, as assertions:
    assert reads["filestream"] == reads["files"]
    assert reads["one_to_one"] >= reads["files"] * 0.95
    # normalized alignments save a large fraction vs the text files
    assert alignments["normalized"] < alignments["files"] * 0.6
    # page compression weak on unique reads: < 10 % over ROW
    assert reads["norm_page"] >= reads["norm_row"] * 0.9
    # the DNA UDT shrinks the sequence payload
    assert reads["norm_udt"] < reads["normalized"]


def test_bench_alignment_bulk_load(benchmark, reseq_alignments):
    """Sorted bulk load into the position-clustered Alignment table."""
    from repro.core.schemas import create_normalized_schema
    from repro.engine import Database

    rows = []
    for a_id, a in enumerate(reseq_alignments[:10_000], start=1):
        rows.append(
            (1, 1, 1, a_id, a_id, None, 1, None, a.position, a.strand,
             a.mismatches, a.mapping_quality)
        )

    def load():
        db = Database()
        create_normalized_schema(db)
        table = db.table("Alignment")
        key = table.schema.key_indexes
        for row in sorted(rows, key=lambda r: tuple(r[i] for i in key)):
            table.insert(row)
        table.finish_bulk_load()
        count = table.row_count
        db.close()
        return count

    assert benchmark.pedantic(load, rounds=2, iterations=1) == len(rows)
