"""Experiment T1 — Table 1: storage efficiency, digital gene expression.

Regenerates the paper's Table 1 at simulator scale: one DGE lane's
level-1 reads, unique tags, alignments, and gene-expression results,
stored under every physical design (Files / FileStream / 1:1 /
normalized / +ROW / +PAGE / +DNA-UDT).

Report: ``benchmarks/results/table1_storage.txt``.

Expected shape (paper Section 5.1.1): FileStream == Files; the 1:1
import is larger than the files; the normalized schema with row
compression matches the files; page compression wins further on this
repetitive workload; alignments shrink drastically once sequences are
referenced by foreign key instead of repeated.
"""

import pytest

from bench_common import save_bench_json, save_report
from repro.core.storage_report import (
    ScenarioData,
    format_engine_report,
    format_table,
    measure_storage,
)


@pytest.fixture(scope="module")
def scenario(dge_reads, ranked_tags, dge_alignments, genes):
    expression = [
        (f"GENE{g.gene_id:05d}", (i + 1) * 7, i + 1)
        for i, g in enumerate(genes[: len(genes) // 2])
    ]
    return ScenarioData(
        kind="dge",
        reads=dge_reads,
        alignments=dge_alignments,
        ranked_tags=ranked_tags,
        expression=expression,
        # DGE aligns *tags*, so the mapview sequences come from the tag
        # list rather than the raw reads
        alignment_sequences={
            f"tag_{rank}": (seq, "I" * len(seq))
            for rank, _count, seq in ranked_tags
        },
    )


def test_table1_report(benchmark, scenario, tmp_path_factory):
    engine_detail = []
    storage_table = benchmark.pedantic(
        measure_storage,
        args=(scenario,),
        kwargs={
            "workdir": tmp_path_factory.mktemp("table1"),
            "engine_detail": engine_detail,
        },
        rounds=1,
        iterations=1,
    )
    text = format_table(
        storage_table,
        "Table 1 (reproduced, simulator scale): Storage Efficiency "
        "- Digital Gene Expression",
    )
    text += "\n" + format_engine_report(engine_detail)
    save_report("table1_storage.txt", text)
    save_bench_json(
        "table1_storage",
        counters={
            section + "_" + design: size
            for section, designs in storage_table.items()
            for design, size in designs.items()
        },
    )
    reads = storage_table["short_reads"]
    # paper claims, as assertions:
    assert reads["filestream"] == reads["files"]
    assert reads["one_to_one"] >= reads["files"]
    assert reads["norm_row"] <= reads["files"] * 1.1
    assert reads["norm_page"] < reads["norm_row"]
    alignments = storage_table["alignments"]
    assert alignments["normalized"] < alignments["one_to_one"]
    # columnstore ablation: the all-integer Alignment table encodes
    # (bit-pack / RLE) well below the uncompressed heap
    assert alignments["norm_column"] < alignments["normalized"]


def test_bench_normalized_import(benchmark, dge_reads, tmp_path_factory):
    """Import-rate microbenchmark: rows/second into the normalized Read
    table (bulk path, clustered key maintained)."""
    from repro.core.schemas import create_normalized_schema
    from repro.engine import Database
    from repro.genomics.fastq import parse_illumina_name

    subset = dge_reads[:5000]

    def load():
        db = Database(
            data_dir=tmp_path_factory.mktemp("imp")
        )
        create_normalized_schema(db)
        table = db.table("Read")
        for r_id, record in enumerate(subset, start=1):
            name = parse_illumina_name(record.name)
            table.insert(
                (1, 1, 1, r_id, name.lane, name.tile, name.x, name.y,
                 record.sequence, record.quality)
            )
        table.finish_bulk_load()
        rows = table.row_count
        db.close()
        return rows

    assert benchmark.pedantic(load, rounds=2, iterations=1) == len(subset)


def test_bench_page_compression_seal(benchmark, dge_reads):
    """Cost of PAGE compression at page-seal time (the write-side price
    of the storage savings)."""
    from repro.engine.schema import Column, TableSchema
    from repro.engine.storage.heap import HeapFile
    from repro.engine.types import int_type, varchar_type

    schema = TableSchema(
        "t",
        [
            Column("id", int_type(), nullable=False),
            Column("seq", varchar_type(100)),
        ],
        primary_key=["id"],
    )
    subset = [(i, r.sequence) for i, r in enumerate(dge_reads[:5000])]

    def load_compressed():
        heap = HeapFile(schema, compression="PAGE")
        for row in subset:
            heap.insert(row)
        heap.seal_all()
        return heap.stored_bytes()

    assert benchmark.pedantic(load_compressed, rounds=2, iterations=1) > 0
