"""Experiment PAR — real multi-core parallel aggregation vs serial.

The exchange operator family ships range-partitioned storage slices to a
process pool, aggregates partials on separate cores, and merges at the
coordinator. This bench runs the canonical scan-aggregate pipeline
serially (``OPTION (MAXDOP 1)``) and at increasing DOP, checks
the results stay byte-identical, and reports three wall clocks per DOP:

- **serial** — the single-process baseline;
- **simulated** — the cost model's idealised parallel wall (partition
  phases divided by DOP plus the LPT makespan), as reported before real
  workers existed;
- **measured** — actual end-to-end wall clock with the worker pool.

On a single-core host the measured numbers cannot beat serial (the
workers time-slice one CPU and pay transport on top), so the speedup
floor is asserted only when ``os.cpu_count() >= 2``.

Reports:
- ``benchmarks/results/parallel.txt`` — speedup-vs-DOP table;
- ``benchmarks/results/BENCH_parallel.json`` — machine-readable.
"""

from __future__ import annotations

import os
import time

import pytest

from bench_common import SCALE, save_bench_json, save_report
from repro.engine.database import Database
from repro.engine.executor import collect_rows
from repro.engine.executor.parallel import ParallelHashAggregate

#: rows in the parallel aggregation workload at scale 1.0
PAR_ROWS = int(150_000 * SCALE)

DOPS = (2, 4)

# no WHERE clause: a bare-scan child lets the exchange ship storage
# slices ("parallel scan" tier) instead of coordinator-fed rows
BASE_SQL = (
    "SELECT grp, COUNT(*), SUM(amount), MAX(amount) FROM readings "
    "GROUP BY grp"
)


def _sql(dop):
    return f"{BASE_SQL} OPTION (MAXDOP {dop})"


@pytest.fixture(scope="module")
def par_db():
    db = Database()
    db.execute(
        "CREATE TABLE readings (r_id INT PRIMARY KEY, grp INT, amount INT)"
    )
    table = db.table("readings")
    for i in range(max(PAR_ROWS, 100)):
        table.insert((i, i % 19, (i * 7) % 50))
    table.finish_bulk_load()
    db.execute("UPDATE STATISTICS readings")
    # spawn the worker pool outside the timed region
    db.query(_sql(max(DOPS)))
    yield db
    db.close()


def _time_query(db, sql, repeats=3):
    """Best-of-N wall time for ``sql``."""
    best = float("inf")
    rows = None
    for _ in range(repeats):
        start = time.perf_counter()
        rows = db.query(sql)
        best = min(best, time.perf_counter() - start)
    return rows, best


def _exchange_node(op):
    if isinstance(op, ParallelHashAggregate):
        return op
    for child in op.children():
        found = _exchange_node(child)
        if found is not None:
            return found
    return None


def _exchange_stats(db, sql):
    """Run ``sql`` once and return the exchange operator's stats."""
    plan = db.plan(sql)
    collect_rows(plan)
    node = _exchange_node(plan)
    return node.stats if node is not None else None


class TestParallel:
    def test_bench_serial(self, benchmark, par_db):
        rows = benchmark.pedantic(
            par_db.query, args=(_sql(1),), rounds=3, iterations=1
        )
        assert rows

    @pytest.mark.parametrize("dop", DOPS)
    def test_bench_parallel(self, benchmark, par_db, dop):
        rows = benchmark.pedantic(
            par_db.query, args=(_sql(dop),), rounds=3, iterations=1
        )
        assert rows


def test_par_report(par_db):
    cpus = os.cpu_count() or 1
    serial_rows, serial_time = _time_query(par_db, _sql(1))

    curve = []
    for dop in DOPS:
        par_rows, measured = _time_query(par_db, _sql(dop))
        # parallel execution is a pure strategy change: byte-identical
        # results, including group order after the coordinator merge
        assert par_rows == serial_rows
        assert repr(par_rows) == repr(serial_rows)

        stats = _exchange_stats(par_db, _sql(dop))
        assert stats is not None
        curve.append(
            {
                "dop": dop,
                "mode": stats.mode,
                "measured_s": round(measured, 6),
                "measured_speedup": round(
                    serial_time / measured if measured > 0 else 1.0, 3
                ),
                "simulated_wall_s": round(stats.simulated_wall, 6),
                "simulated_speedup": round(stats.simulated_speedup, 3),
                "bytes_shipped": stats.bytes_shipped,
                "bytes_returned": stats.bytes_returned,
            }
        )

    n_rows = par_db.scalar("SELECT COUNT(*) FROM readings")
    lines = [
        "Parallel aggregation: scan-aggregate, "
        f"{n_rows:,} rows, {len(serial_rows)} groups, {cpus} cpu(s)",
        "=" * 72,
        f"{'Plan':<30}{'measured s':>14}{'speedup':>9}"
        f"{'simulated':>10}{'mode':>9}",
        "-" * 72,
        f"{'serial (MAXDOP 1)':<30}{serial_time:>14.4f}{'1.00x':>9}"
        f"{'1.00x':>10}{'serial':>9}",
    ]
    for point in curve:
        lines.append(
            f"{'parallel (MAXDOP %d)' % point['dop']:<30}"
            f"{point['measured_s']:>14.4f}"
            f"{'%.2fx' % point['measured_speedup']:>9}"
            f"{'%.2fx' % point['simulated_speedup']:>10}"
            f"{point['mode'].split()[-1]:>9}"
        )
    save_report("parallel.txt", "\n".join(lines))
    save_bench_json(
        "parallel",
        wall_time=curve[0]["measured_s"],
        rows=n_rows,
        extra={
            "query": BASE_SQL,
            "cpus": cpus,
            "serial_s": round(serial_time, 6),
            "curve": curve,
        },
    )

    # a real multi-core host must show a real speedup at DOP 2; a
    # single-core host (CI smoke containers) cannot, so skip there —
    # the CI assertion step applies the same cpus >= 2 gate to the JSON
    if cpus < 2:
        pytest.skip(f"only {cpus} cpu: measured speedup floor not enforced")
    assert curve[0]["measured_speedup"] >= 1.2
