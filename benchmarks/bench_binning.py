"""Experiments F7F8 + S532 — Figures 7/8 and Section 5.3.2:
sequential script vs declarative Query 1 for unique-read binning.

The paper: a 26-line Perl script took 10 minutes over a 500 MB lane;
SQL Query 1 finished in 44 s (13.6x) because SQL Server parallelised the
scan and aggregation over all four cores while the script used one.
Figure 7 shows the script's read→process profile at ~25 % CPU; Figure 8
shows the query keeping all cores busy.

Reports:
- ``benchmarks/results/binning_s532.txt`` — the runtime comparison;
- ``benchmarks/results/figure7_script_trace.txt`` — the script's phase
  trace (Figure 7);
- ``benchmarks/results/figure8_sql_trace.txt`` — the parallel plan's
  phase profile (Figure 8).

Hardware substitution: this container has one core, so the parallel
query's multi-core wall clock is *simulated* by the exchange operator
(per-partition work measured, LPT-scheduled onto DOP=4 workers; see
DESIGN.md). Both the measured single-core and simulated four-core times
are reported. The absolute script-vs-SQL gap also compresses compared to
the paper because both stacks run in the same interpreter here, whereas
the paper compared interpreted Perl against a native-code engine.
"""

import time

import pytest

from bench_common import save_bench_json, save_report
from repro.baselines.perl_binning import run_binning_script
from repro.baselines.trace import trace_from_parallel_stats
from repro.core import queries
from repro.engine.executor import ParallelHashAggregate


@pytest.fixture(scope="module")
def lane_file(tmp_path_factory, dge_reads):
    from repro.genomics.fastq import write_fastq

    path = tmp_path_factory.mktemp("binning") / "855_s_1.fastq"
    write_fastq(dge_reads, path)
    return path


def _find_exchange(op):
    if isinstance(op, ParallelHashAggregate):
        return op
    for child in op.children():
        found = _find_exchange(child)
        if found is not None:
            return found
    return None


def run_query1_with_stats(db, dop=4):
    """Execute Query 1 and return (rows, exchange stats, wall seconds)."""
    plan = db.plan(queries.query1_binning_sql(1, 1, 1, maxdop=dop))
    start = time.perf_counter()
    rows = list(plan)
    elapsed = time.perf_counter() - start
    return rows, _find_exchange(plan), elapsed


class TestBenchmarks:
    def test_bench_perl_script(self, benchmark, lane_file):
        ranked, _trace = benchmark.pedantic(
            run_binning_script, args=(lane_file,), rounds=3, iterations=1
        )
        assert len(ranked) > 0

    def test_bench_query1_serial(self, benchmark, dge_warehouse):
        rows = benchmark.pedantic(
            queries.execute_query1,
            args=(dge_warehouse.db, 1, 1, 1),
            kwargs={"maxdop": 1},
            rounds=3,
            iterations=1,
        )
        assert len(rows) > 0

    def test_bench_query1_parallel_plan(self, benchmark, dge_warehouse):
        rows = benchmark.pedantic(
            queries.execute_query1,
            args=(dge_warehouse.db, 1, 1, 1),
            kwargs={"maxdop": 4},
            rounds=3,
            iterations=1,
        )
        assert len(rows) > 0


def test_f7f8_s532_report(benchmark, lane_file, dge_warehouse, dge_reads):
    def run_comparison():
        script_ranked, script_trace = run_binning_script(lane_file, cores=4)
        sql_rows, exchange, sql_measured = run_query1_with_stats(
            dge_warehouse.db, dop=4
        )
        return script_ranked, script_trace, sql_rows, exchange, sql_measured

    (
        script_ranked,
        script_trace,
        sql_rows,
        exchange,
        sql_measured,
    ) = benchmark.pedantic(run_comparison, rounds=1, iterations=1)

    # the two approaches must produce the same binning
    script_map = {seq: count for _r, count, seq in script_ranked}
    sql_map = {seq: count for _r, count, seq in sql_rows}
    assert script_map == sql_map

    stats = exchange.stats
    simulated = (
        sql_measured - stats.measured_wall + stats.simulated_wall
    )

    # Figure 7: the script's sequential trace
    save_report("figure7_script_trace.txt", script_trace.render())

    # Figure 8: the parallel plan's profile, straight from the exchange
    # operator's measured phase timings
    sql_trace = trace_from_parallel_stats(
        "SQL Query 1 (parallel plan)", stats, cores=4
    )
    save_report("figure8_sql_trace.txt", sql_trace.render())

    lines = [
        "Section 5.3.2 (reproduced): unique-read binning, "
        f"{len(dge_reads):,} reads, {len(sql_rows):,} unique tags",
        "=" * 72,
        f"{'Approach':<46}{'seconds':>12}",
        "-" * 72,
        f"{'Perl-style sequential script (1 core)':<46}"
        f"{script_trace.total_time:>12.3f}",
        f"{'SQL Query 1, measured on this 1-core host':<46}"
        f"{sql_measured:>12.3f}",
        f"{'SQL Query 1, simulated 4-core wall clock':<46}{simulated:>12.3f}",
        "-" * 72,
        f"script / SQL(simulated-4-core) ratio: "
        f"{script_trace.total_time / simulated:.1f}x",
        f"paper: 600s script vs 44s SQL = 13.6x "
        "(native engine vs interpreted Perl; see EXPERIMENTS.md)",
        f"script mean CPU: {script_trace.mean_utilization() * 100:.0f}% of 4 cores "
        f"(paper Figure 7: ~25%)",
    ]
    save_report("binning_s532.txt", "\n".join(lines))
    save_bench_json(
        "binning_s532",
        wall_time=sql_measured,
        rows=len(sql_rows),
        counters={
            "rows_in": stats.rows_in,
            "rows_out": stats.rows_out,
            "scan_time_s": round(stats.scan_time, 6),
            "partition_time_s": round(stats.partition_time, 6),
            "gather_time_s": round(stats.gather_time, 6),
        },
        extra={
            "script_time_s": round(script_trace.total_time, 6),
            "simulated_wall_s": round(simulated, 6),
            "script_mean_cpu": round(script_trace.mean_utilization(), 4),
        },
    )

    # shape assertions: the parallel query beats the sequential script
    assert simulated < script_trace.total_time
    # and the script is stuck near one core
    assert script_trace.mean_utilization() <= 0.3
