"""Experiment COL — columnstore segment scan vs the heap on the
selective scan-filter-aggregate pipeline.

Three executions of the same query, identical results required:

- **heap, row mode** — the Volcano interpreter baseline;
- **heap, batch mode** — vectorized execution over page-aligned batches
  (the ``BENCH_vectorized.json`` winner);
- **columnstore** — encoded-vector execution: zone maps skip segments
  whose min/max exclude the range, the pushed predicate runs on the
  encoded vectors of the survivors, and only surviving positions are
  materialised (late materialization).

The filter is a narrow range over a sequential key, so zone-map
pruning — not just encoding — carries the win: the columnstore touches
a handful of segments while both heap modes scan every page.

Reports:
- ``benchmarks/results/columnstore.txt`` — the mode comparison;
- ``benchmarks/results/BENCH_columnstore.json`` — machine-readable.
"""

from __future__ import annotations

import time

import pytest

from bench_common import SCALE, save_bench_json, save_report
from repro.engine.database import Database

#: rows in the workload at scale 1.0
COL_ROWS = max(int(120_000 * SCALE), 2_000)
#: segment size chosen so the table seals into ~32 zone-mapped segments
SEGMENT_ROWS = max(COL_ROWS // 32, 64)
#: the selective range: ~10 % of the key space
RANGE_LO = COL_ROWS // 2
RANGE_HI = RANGE_LO + COL_ROWS // 10

SQL = (
    "SELECT grp, COUNT(*), SUM(amount) FROM {t} "
    f"WHERE m_id BETWEEN {RANGE_LO} AND {RANGE_HI} "
    "GROUP BY grp OPTION (MAXDOP 1)"
)


@pytest.fixture(scope="module")
def col_db():
    db = Database()
    db.execute(
        "CREATE TABLE measurements_heap (m_id INT PRIMARY KEY, grp INT, "
        "amount INT, price FLOAT)"
    )
    db.execute(
        "CREATE TABLE measurements_col (m_id INT PRIMARY KEY, grp INT, "
        "amount INT, price FLOAT) "
        f"WITH (STORAGE = 'COLUMN', SEGMENT_ROWS = {SEGMENT_ROWS})"
    )
    for name in ("measurements_heap", "measurements_col"):
        table = db.table(name)
        for i in range(COL_ROWS):
            table.insert((i, i % 23, (i * 7) % 50, float(i % 13) * 2.5))
        table.finish_bulk_load()
        db.execute(f"UPDATE STATISTICS {name}")
    yield db
    db.close()


def _time_query(db, sql, mode="auto", repeats=5):
    db.execution_mode = mode
    best = float("inf")
    rows = None
    try:
        for _ in range(repeats):
            start = time.perf_counter()
            rows = db.query(sql)
            best = min(best, time.perf_counter() - start)
    finally:
        db.execution_mode = "auto"
    return rows, best


def _column_bytes_scanned(store, predicates, columns):
    """Encoded bytes of the referenced columns in the admitted segments."""
    names = store.schema.column_names
    indexes = [names.index(c) for c in columns]
    total = 0
    for segment in store.segments:
        if all(
            segment.columns[p.col_index].zone_admits(p) for p in predicates
        ):
            total += sum(segment.columns[i].encoded_bytes for i in indexes)
    return total


class TestColumnstoreBench:
    def test_bench_heap_batch(self, benchmark, col_db):
        rows = benchmark.pedantic(
            col_db.query,
            args=(SQL.format(t="measurements_heap"),),
            rounds=3,
            iterations=1,
        )
        assert rows

    def test_bench_columnstore(self, benchmark, col_db):
        rows = benchmark.pedantic(
            col_db.query,
            args=(SQL.format(t="measurements_col"),),
            rounds=3,
            iterations=1,
        )
        assert rows


def test_columnstore_report(col_db):
    heap_sql = SQL.format(t="measurements_heap")
    col_sql = SQL.format(t="measurements_col")

    # warm caches and code paths before timing
    _time_query(col_db, heap_sql, "row", repeats=1)
    _time_query(col_db, heap_sql, "auto", repeats=1)
    _time_query(col_db, col_sql, "auto", repeats=1)

    row_rows, row_time = _time_query(col_db, heap_sql, "row")
    batch_rows, batch_time = _time_query(col_db, heap_sql, "auto")
    col_rows, col_time = _time_query(col_db, col_sql, "auto")

    # the storage engine must be invisible in the results
    assert repr(batch_rows) == repr(row_rows)
    assert repr(col_rows) == repr(row_rows)

    # zone-map pruning must demonstrably engage
    col_table = col_db.table("measurements_col")
    io_before = col_table.store.io.snapshot()
    col_db.query(col_sql)
    from repro.engine.metrics import Counters

    delta = Counters.delta(col_table.store.io, io_before)
    segments_read = delta.get("segments_read", 0)
    segments_skipped = delta.get("segments_skipped", 0)
    assert segments_skipped > 0
    assert segments_read < segments_read + segments_skipped

    plan = col_db.explain(col_sql)
    assert "Columnstore Index Scan" in plan
    assert "pushed:" in plan

    from repro.engine.storage.columnstore import PushedPredicate

    predicates = [PushedPredicate(0, "between", (RANGE_LO, RANGE_HI))]
    heap_bytes = col_db.table("measurements_heap").stored_bytes()
    col_bytes = _column_bytes_scanned(
        col_table.store, predicates, ["m_id", "grp", "amount"]
    )

    speedup_vs_row = row_time / col_time if col_time > 0 else 1.0
    speedup_vs_batch = batch_time / col_time if col_time > 0 else 1.0

    lines = [
        f"Columnstore execution: selective scan-filter-aggregate, "
        f"{COL_ROWS:,} rows, {SEGMENT_ROWS:,}-row segments",
        "=" * 72,
        f"{'Mode':<46}{'seconds':>12}",
        "-" * 72,
        f"{'heap, row mode (Volcano interpreter)':<46}{row_time:>12.4f}",
        f"{'heap, batch mode (vectorized)':<46}{batch_time:>12.4f}",
        f"{'columnstore (encoded vectors + zone maps)':<46}{col_time:>12.4f}",
        "-" * 72,
        f"{'speedup vs heap row':<46}{speedup_vs_row:>11.2f}x",
        f"{'speedup vs heap batch':<46}{speedup_vs_batch:>11.2f}x",
        f"{'segments read / skipped':<46}"
        f"{f'{segments_read} / {segments_skipped}':>12}",
        f"{'heap bytes scanned':<46}{heap_bytes:>12,}",
        f"{'columnstore bytes scanned':<46}{col_bytes:>12,}",
    ]
    save_report("columnstore.txt", "\n".join(lines))
    save_bench_json(
        "columnstore",
        wall_time=col_time,
        rows=COL_ROWS,
        counters={
            "segments_read": segments_read,
            "segments_skipped": segments_skipped,
            "heap_bytes_scanned": heap_bytes,
            "columnstore_bytes_scanned": col_bytes,
        },
        extra={
            "query": col_sql,
            "heap_row_s": round(row_time, 6),
            "heap_batch_s": round(batch_time, 6),
            "columnstore_s": round(col_time, 6),
            "speedup_vs_heap_row": round(speedup_vs_row, 3),
            "speedup_vs_heap_batch": round(speedup_vs_batch, 3),
        },
    )

    # the selective scan must never regress against the heap, and at
    # representative scale the pruned segment scan clears 2x (timing at
    # tiny smoke scales is dominated by fixed per-query overhead)
    assert col_bytes < heap_bytes
    floor = 2.0 if SCALE >= 0.5 else 1.0
    assert speedup_vs_batch >= floor
